//! SOAP RPC server and client over PadicoTM.

use padico_tm::module::PadicoModule;
use padico_tm::runtime::PadicoTM;
use padico_tm::selector::FabricChoice;
use padico_tm::vlink::VLinkStream;
use padico_tm::TmError;
use padico_util::ids::NodeId;
use padico_util::trace_info;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::envelope::{self, Decoded, Fault, SoapValue};
use crate::http;

/// Server-side method handler: `(method, params) → results or fault`.
pub type Handler = Box<
    dyn Fn(&str, &[(String, SoapValue)]) -> Result<Vec<(String, SoapValue)>, Fault>
        + Send
        + Sync,
>;

/// A running SOAP endpoint.
pub struct SoapServer {
    service: String,
    shutting_down: Arc<AtomicBool>,
    tm: Arc<PadicoTM>,
}

impl SoapServer {
    /// Serve `handler` under the given service name.
    pub fn serve(
        tm: Arc<PadicoTM>,
        service: &str,
        handler: Handler,
    ) -> Result<SoapServer, TmError> {
        let vlink_service = format!("soap:{service}");
        let listener = tm.vlink_listen(&vlink_service)?;
        let shutting_down = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);
        let flag = Arc::clone(&shutting_down);
        let accept_tm = Arc::clone(&tm);
        std::thread::Builder::new()
            .name(format!("soap-{}-{service}", tm.node()))
            .spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok(stream) => {
                            if flag.load(Ordering::Acquire) {
                                return;
                            }
                            let handler = Arc::clone(&handler);
                            std::thread::spawn(move ||

                                serve_connection(stream, handler));
                        }
                        Err(_) => return,
                    }
                }
                drop(accept_tm);
            })
            .expect("spawn soap accept thread");
        trace_info!("soap", "{}: SOAP service `{service}` up", tm.node());
        Ok(SoapServer {
            service: service.to_string(),
            shutting_down,
            tm,
        })
    }

    pub fn service(&self) -> &str {
        &self.service
    }

    /// Stop accepting new connections.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = self.tm.vlink_connect(
            self.tm.node(),
            &format!("soap:{}", self.service),
            FabricChoice::Auto,
        );
    }
}

fn serve_connection(stream: VLinkStream, handler: Arc<Handler>) {
    loop {
        let request = match http::read_message(&stream) {
            Ok(Some(msg)) => msg,
            Ok(None) | Err(_) => return,
        };
        let reply = match envelope_of(&request) {
            Ok((method, params)) => match handler(&method, &params) {
                Ok(results) => http::ok(envelope::encode_response(&method, &results).into_bytes()),
                Err(fault) => http::server_error(envelope::encode_fault(&fault).into_bytes()),
            },
            Err(fault) => http::server_error(envelope::encode_fault(&fault).into_bytes()),
        };
        if http::write_message(&stream, &reply).is_err() {
            return;
        }
    }
}

fn envelope_of(
    request: &http::HttpMessage,
) -> Result<(String, Vec<(String, SoapValue)>), Fault> {
    if !request.start_line.starts_with("POST ") {
        return Err(Fault::client(format!(
            "unsupported request `{}`",
            request.start_line
        )));
    }
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Fault::client("body is not UTF-8"))?;
    match envelope::decode(text)? {
        Decoded::Call(method, params) => Ok((method, params)),
        Decoded::Fault(f) => Err(f),
    }
}

/// A SOAP client bound to one remote service.
pub struct SoapClient {
    stream: VLinkStream,
    path: String,
}

impl SoapClient {
    /// Connect to `service` on `node` (fabric picked by the selector —
    /// the gSOAP-on-PadicoTM story: sockets that may ride the SAN).
    pub fn connect(
        tm: &Arc<PadicoTM>,
        node: NodeId,
        service: &str,
        choice: FabricChoice,
    ) -> Result<SoapClient, TmError> {
        let stream = tm.vlink_connect(node, &format!("soap:{service}"), choice)?;
        Ok(SoapClient {
            stream,
            path: format!("/{service}"),
        })
    }

    /// Invoke a method; returns the result parameters.
    pub fn call(
        &self,
        method: &str,
        params: &[(String, SoapValue)],
    ) -> Result<Vec<(String, SoapValue)>, Fault> {
        let body = envelope::encode_request(method, params).into_bytes();
        http::write_message(&self.stream, &http::post(&self.path, method, body))
            .map_err(|e| Fault::client(format!("transport: {e}")))?;
        let reply = http::read_message(&self.stream)
            .map_err(|e| Fault::client(format!("transport: {e}")))?
            .ok_or_else(|| Fault::client("server closed the connection"))?;
        let text = std::str::from_utf8(&reply.body)
            .map_err(|_| Fault::client("reply is not UTF-8"))?;
        match envelope::decode(text)? {
            Decoded::Call(name, results) => {
                if name != format!("{method}Response") {
                    return Err(Fault::client(format!(
                        "mismatched response `{name}` for `{method}`"
                    )));
                }
                Ok(results)
            }
            Decoded::Fault(f) => Err(f),
        }
    }
}

/// The loadable middleware module (paper §4.3.4: middleware systems are
/// dynamically loadable PadicoTM modules).
pub struct SoapModule;

impl PadicoModule for SoapModule {
    fn name(&self) -> &str {
        "soap.gsoap"
    }

    fn init(&self, tm: &Arc<PadicoTM>) -> Result<(), TmError> {
        trace_info!("soap", "{}: gSOAP module initialized", tm.node());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padico_fabric::topology::single_cluster;
    use padico_fabric::FabricKind;

    fn grid2() -> Vec<Arc<PadicoTM>> {
        let (topo, _ids) = single_cluster(2);
        PadicoTM::boot_all(Arc::new(topo)).unwrap()
    }

    fn calculator() -> Handler {
        Box::new(|method, params| match method {
            "add" => {
                let mut total = 0i64;
                for (_, v) in params {
                    match v {
                        SoapValue::Int(x) => total += x,
                        other => {
                            return Err(Fault::client(format!("add takes ints, got {other:?}")))
                        }
                    }
                }
                Ok(vec![("sum".into(), SoapValue::Int(total))])
            }
            "checksum" => match &params[0].1 {
                SoapValue::Bytes(b) => Ok(vec![(
                    "sum".into(),
                    SoapValue::Int(b.iter().map(|&x| i64::from(x)).sum()),
                )]),
                other => Err(Fault::client(format!("checksum takes bytes, got {other:?}"))),
            },
            other => Err(Fault::server(format!("no such method `{other}`"))),
        })
    }

    #[test]
    fn call_roundtrip_and_faults() {
        let tms = grid2();
        let _server = SoapServer::serve(Arc::clone(&tms[1]), "calc", calculator()).unwrap();
        let client =
            SoapClient::connect(&tms[0], tms[1].node(), "calc", FabricChoice::Auto).unwrap();
        let results = client
            .call(
                "add",
                &[
                    ("a".into(), SoapValue::Int(40)),
                    ("b".into(), SoapValue::Int(2)),
                ],
            )
            .unwrap();
        assert_eq!(results[0].1, SoapValue::Int(42));
        // Server-declared fault.
        let err = client.call("explode", &[]).unwrap_err();
        assert_eq!(err.code, "Server");
        // Client-side type fault.
        let err = client
            .call("add", &[("a".into(), SoapValue::Str("x".into()))])
            .unwrap_err();
        assert_eq!(err.code, "Client");
        // The connection survives faults.
        let results = client
            .call("add", &[("a".into(), SoapValue::Int(1))])
            .unwrap();
        assert_eq!(results[0].1, SoapValue::Int(1));
    }

    #[test]
    fn soap_rides_the_san_cross_paradigm() {
        // The gSOAP-on-PadicoTM claim: the same SOAP stack, pinned to the
        // Myrinet SAN, moves binary payloads fast (in virtual time).
        let tms = grid2();
        let _server = SoapServer::serve(Arc::clone(&tms[1]), "blob", calculator()).unwrap();
        let client = SoapClient::connect(
            &tms[0],
            tms[1].node(),
            "blob",
            FabricChoice::Kind(FabricKind::Myrinet),
        )
        .unwrap();
        let payload = padico_util::rng::payload(5, "soap", 32 << 10);
        let expected: i64 = payload.iter().map(|&x| i64::from(x)).sum();
        let results = client
            .call("checksum", &[("data".into(), SoapValue::Bytes(payload))])
            .unwrap();
        assert_eq!(results[0].1, SoapValue::Int(expected));
    }

    #[test]
    fn concurrent_clients() {
        let tms = grid2();
        let _server = SoapServer::serve(Arc::clone(&tms[1]), "many", calculator()).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tm = Arc::clone(&tms[0]);
                let node = tms[1].node();
                std::thread::spawn(move || {
                    let client =
                        SoapClient::connect(&tm, node, "many", FabricChoice::Auto).unwrap();
                    for k in 0..5 {
                        let got = client
                            .call("add", &[("v".into(), SoapValue::Int(i * 10 + k))])
                            .unwrap();
                        assert_eq!(got[0].1, SoapValue::Int(i * 10 + k));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn module_loads_alongside_others() {
        let tms = grid2();
        tms[0].modules().load(&tms[0], Arc::new(SoapModule)).unwrap();
        assert_eq!(
            tms[0].modules().loaded(),
            vec!["soap.gsoap".to_string()]
        );
    }
}
