//! Minimal HTTP/1.0-style framing over a VLink byte stream.
//!
//! gSOAP speaks HTTP POST; this module reproduces the subset it needs:
//! a request line, `Content-Length` and `SOAPAction` headers, a blank
//! line, and the body. Responses carry a status line. Connections are
//! keep-alive (one VLink, many request/response cycles), as gSOAP uses
//! them on fast transports.

use padico_tm::vlink::VLinkStream;
use padico_tm::TmError;

/// One parsed HTTP message (request or response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpMessage {
    /// Request line or status line, e.g. `POST /solver HTTP/1.0`.
    pub start_line: String,
    /// `(name, value)` headers in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpMessage {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(self.start_line.as_bytes());
        out.extend_from_slice(b"\r\n");
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(format!("content-length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }
}

/// Build a SOAP POST request.
pub fn post(path: &str, action: &str, body: Vec<u8>) -> HttpMessage {
    HttpMessage {
        start_line: format!("POST {path} HTTP/1.0"),
        headers: vec![
            ("content-type".into(), "text/xml; charset=utf-8".into()),
            ("soapaction".into(), format!("\"{action}\"")),
        ],
        body,
    }
}

/// Build a `200 OK` response.
pub fn ok(body: Vec<u8>) -> HttpMessage {
    HttpMessage {
        start_line: "HTTP/1.0 200 OK".into(),
        headers: vec![("content-type".into(), "text/xml; charset=utf-8".into())],
        body,
    }
}

/// Build a `500` response (SOAP faults travel with status 500).
pub fn server_error(body: Vec<u8>) -> HttpMessage {
    HttpMessage {
        start_line: "HTTP/1.0 500 Internal Server Error".into(),
        headers: vec![("content-type".into(), "text/xml; charset=utf-8".into())],
        body,
    }
}

/// Write one message to the stream.
pub fn write_message(stream: &VLinkStream, msg: &HttpMessage) -> Result<(), TmError> {
    stream.write_all(&msg.serialize())
}

/// Read one message from the stream; `Ok(None)` at end-of-stream.
pub fn read_message(stream: &VLinkStream) -> Result<Option<HttpMessage>, TmError> {
    // Read the head byte-by-byte until the blank line (the head is tiny;
    // the body is read in one exact chunk).
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            if head.is_empty() {
                return Ok(None);
            }
            return Err(TmError::Protocol("stream closed inside HTTP head".into()));
        }
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > 16 << 10 {
            return Err(TmError::Protocol("HTTP head too large".into()));
        }
    }
    let head_text = String::from_utf8(head)
        .map_err(|_| TmError::Protocol("HTTP head is not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n");
    let start_line = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or_else(|| TmError::Protocol("empty HTTP head".into()))?
        .to_string();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| TmError::Protocol(format!("bad header line `{line}`")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| TmError::Protocol("bad content-length".into()))?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Some(HttpMessage {
        start_line,
        headers,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use padico_fabric::topology::single_cluster;
    use padico_tm::runtime::PadicoTM;
    use padico_tm::selector::FabricChoice;
    use std::sync::Arc;

    fn stream_pair() -> (VLinkStream, VLinkStream) {
        let (topo, _ids) = single_cluster(2);
        let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
        let listener = tms[1].vlink_listen("http").unwrap();
        let t = std::thread::spawn(move || listener.accept().unwrap());
        let client = tms[0]
            .vlink_connect(tms[1].node(), "http", FabricChoice::Auto)
            .unwrap();
        let server = t.join().unwrap();
        // Keep the runtimes alive with the streams.
        std::mem::forget(tms);
        (client, server)
    }

    #[test]
    fn post_roundtrip_over_vlink() {
        let (client, server) = stream_pair();
        let msg = post("/solver", "simulate", b"<Envelope/>".to_vec());
        write_message(&client, &msg).unwrap();
        let got = read_message(&server).unwrap().unwrap();
        assert_eq!(got.start_line, "POST /solver HTTP/1.0");
        assert_eq!(got.header("soapaction"), Some("\"simulate\""));
        assert_eq!(got.header("content-length"), Some("11"));
        assert_eq!(got.body, b"<Envelope/>");
        // Response direction.
        write_message(&server, &ok(b"<Envelope/>".to_vec())).unwrap();
        let reply = read_message(&client).unwrap().unwrap();
        assert!(reply.start_line.contains("200 OK"));
    }

    #[test]
    fn keepalive_many_cycles() {
        let (client, server) = stream_pair();
        for i in 0..5u8 {
            write_message(&client, &post("/s", "op", vec![i; i as usize])).unwrap();
            let got = read_message(&server).unwrap().unwrap();
            assert_eq!(got.body.len(), i as usize);
            write_message(&server, &ok(vec![i])).unwrap();
            assert_eq!(read_message(&client).unwrap().unwrap().body, vec![i]);
        }
    }

    #[test]
    fn eof_yields_none() {
        let (client, server) = stream_pair();
        client.close().unwrap();
        assert_eq!(read_message(&server).unwrap(), None);
    }

    #[test]
    fn empty_body_allowed() {
        let (client, server) = stream_pair();
        write_message(&client, &post("/s", "ping", vec![])).unwrap();
        let got = read_message(&server).unwrap().unwrap();
        assert!(got.body.is_empty());
    }
}
