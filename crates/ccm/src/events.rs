//! The CCM event model: sources push to sinks.
//!
//! Events travel as oneway CORBA invocations of the `push_event`
//! operation on a sink object — the direct-push variant of the CCM event
//! channel (the notification-service variant is out of scope; direct push
//! is what a coupling application's progress ticks need).

use padico_orb::cdr::{CdrReader, CdrWriter};
use padico_orb::orb::ObjectRef;
use padico_orb::poa::{Servant, ServerCtx};
use padico_orb::OrbError;
use std::sync::Arc;

use crate::component::CcmComponent;
use crate::error::CcmError;

/// Operation name sinks implement.
pub const PUSH_OP: &str = "push_event";

/// An event instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Event type repository id, e.g. `"IDL:Coupling/StepDone:1.0"`.
    pub type_id: String,
    /// Opaque CDR-encoded event body.
    pub data: Vec<u8>,
}

impl Event {
    pub fn new(type_id: impl Into<String>, data: Vec<u8>) -> Event {
        Event {
            type_id: type_id.into(),
            data,
        }
    }

    /// Push this event to a sink object (oneway).
    pub fn push_to(&self, sink: &ObjectRef) -> Result<(), CcmError> {
        sink.request(PUSH_OP)
            .arg_string(&self.type_id)
            .arg_octet_seq(bytes::Bytes::from(self.data.clone()))
            .invoke_oneway()
            .map_err(CcmError::from)
    }

    /// Decode from a `push_event` argument stream.
    pub fn read(args: &mut CdrReader) -> Result<Event, OrbError> {
        let type_id = args.read_string()?;
        let data = args.read_octet_seq()?.to_vec();
        Ok(Event { type_id, data })
    }

    /// Encode into a CDR stream (server-side replay, tests).
    pub fn write(&self, w: &mut CdrWriter) {
        w.write_string(&self.type_id);
        w.write_octet_slice(&self.data);
    }
}

/// Servant adapter the container activates for each event sink port: it
/// forwards pushed events into the component instance.
pub struct SinkServant {
    pub component: Arc<dyn CcmComponent>,
    pub sink_name: String,
    pub event_type_id: String,
}

impl Servant for SinkServant {
    fn repository_id(&self) -> &str {
        &self.event_type_id
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        _reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            PUSH_OP => {
                let event = Event::read(args)?;
                self.component
                    .push_event(&self.sink_name, event)
                    .map_err(|e| e.to_wire())
            }
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padico_orb::profile::MarshalStrategy;

    #[test]
    fn event_cdr_roundtrip() {
        let e = Event::new("IDL:Coupling/StepDone:1.0", vec![1, 2, 3]);
        let mut w = CdrWriter::new(MarshalStrategy::Copying);
        e.write(&mut w);
        let mut r = CdrReader::new(&w.finish());
        assert_eq!(Event::read(&mut r).unwrap(), e);
    }

    #[test]
    fn empty_event_body_is_fine() {
        let e = Event::new("IDL:Tick:1.0", vec![]);
        let mut w = CdrWriter::new(MarshalStrategy::Copying);
        e.write(&mut w);
        let mut r = CdrReader::new(&w.finish());
        assert_eq!(Event::read(&mut r).unwrap().data, Vec::<u8>::new());
    }
}
