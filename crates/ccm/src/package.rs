//! Software packages: the CCM deployment model's unit of shipping.
//!
//! CCM packages are ZIP archives holding an OSD (Open Software
//! Description) XML descriptor plus implementations. Here a package is a
//! flat **`.car` archive** (Component ARchive — documented substitute for
//! ZIP, see DESIGN.md): length-prefixed named entries, one of which is
//! the `softpkg.xml` descriptor. The "binary" entry carries a *factory
//! symbol*: deployment looks the symbol up in the process-wide
//! [`FactoryRegistry`], which is this reproduction's stand-in for
//! dlopen-ing a shipped `.so` — the packaging, upload, constraint and
//! instantiation paths are all exercised for real.
//!
//! Localization constraints (paper §2: "the chemistry code — source and
//! binaries — must stay on the machines of the company") ride in the
//! descriptor as `<allowed-machine>` elements.

use padico_util::xml::{self, Element};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::component::CcmComponent;
use crate::error::CcmError;

/// Magic prefix of the `.car` archive format.
pub const CAR_MAGIC: &[u8; 4] = b"CAR1";

/// An entry name the descriptor must use.
pub const DESCRIPTOR_ENTRY: &str = "softpkg.xml";

/// A software package.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Package {
    /// Package (component type) name.
    pub name: String,
    pub version: String,
    /// Factory symbol naming the component entry point.
    pub factory_symbol: String,
    /// Machines the package may be deployed on (`None` = anywhere).
    pub allowed_machines: Option<Vec<String>>,
    /// Additional archive entries (documentation, resources).
    pub extra_entries: Vec<(String, Vec<u8>)>,
}

impl Package {
    pub fn new(
        name: impl Into<String>,
        version: impl Into<String>,
        factory_symbol: impl Into<String>,
    ) -> Package {
        Package {
            name: name.into(),
            version: version.into(),
            factory_symbol: factory_symbol.into(),
            allowed_machines: None,
            extra_entries: Vec::new(),
        }
    }

    /// Restrict deployment to the given machines.
    pub fn restrict_to_machines(mut self, machines: &[&str]) -> Package {
        self.allowed_machines = Some(machines.iter().map(|m| m.to_string()).collect());
        self
    }

    /// Whether the package may run on `machine`.
    pub fn allows_machine(&self, machine: &str) -> bool {
        match &self.allowed_machines {
            None => true,
            Some(allowed) => allowed.iter().any(|m| m == machine),
        }
    }

    /// The OSD-style descriptor XML.
    pub fn descriptor_xml(&self) -> String {
        let mut root = Element::new("softpkg")
            .attr("name", self.name.clone())
            .attr("version", self.version.clone())
            .child(Element::new("implementation").attr("entrypoint", self.factory_symbol.clone()));
        if let Some(machines) = &self.allowed_machines {
            let mut loc = Element::new("localization");
            for m in machines {
                loc = loc.child(Element::new("allowed-machine").with_text(m.clone()));
            }
            root = root.child(loc);
        }
        root.to_xml()
    }

    fn from_descriptor_xml(text: &str) -> Result<Package, CcmError> {
        let root = xml::parse(text)?;
        if root.name != "softpkg" {
            return Err(CcmError::Descriptor(format!(
                "expected <softpkg>, found <{}>",
                root.name
            )));
        }
        let name = root
            .get_attr("name")
            .ok_or_else(|| CcmError::Descriptor("softpkg without name".into()))?
            .to_string();
        let version = root.get_attr("version").unwrap_or("0.0").to_string();
        let factory_symbol = root
            .find("implementation")
            .and_then(|e| e.get_attr("entrypoint"))
            .ok_or_else(|| CcmError::Descriptor("softpkg without implementation".into()))?
            .to_string();
        let allowed_machines = root.find("localization").map(|loc| {
            loc.find_all("allowed-machine")
                .map(|m| m.text.clone())
                .collect()
        });
        Ok(Package {
            name,
            version,
            factory_symbol,
            allowed_machines,
            extra_entries: Vec::new(),
        })
    }

    /// Serialize to `.car` archive bytes.
    pub fn to_archive(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CAR_MAGIC);
        let descriptor = self.descriptor_xml().into_bytes();
        let entries: Vec<(&str, &[u8])> = std::iter::once((DESCRIPTOR_ENTRY, descriptor.as_slice()))
            .chain(
                self.extra_entries
                    .iter()
                    .map(|(n, d)| (n.as_str(), d.as_slice())),
            )
            .collect();
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (name, data) in entries {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Parse a `.car` archive.
    pub fn from_archive(bytes: &[u8]) -> Result<Package, CcmError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CcmError> {
            if *pos + n > bytes.len() {
                return Err(CcmError::Package("truncated archive".into()));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != CAR_MAGIC {
            return Err(CcmError::Package("bad magic".into()));
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        let mut descriptor: Option<String> = None;
        let mut extra = Vec::new();
        for _ in 0..count {
            let name_len =
                u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
                .map_err(|_| CcmError::Package("entry name is not UTF-8".into()))?;
            let data_len =
                u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
            let data = take(&mut pos, data_len)?.to_vec();
            if name == DESCRIPTOR_ENTRY {
                descriptor = Some(
                    String::from_utf8(data)
                        .map_err(|_| CcmError::Package("descriptor is not UTF-8".into()))?,
                );
            } else {
                extra.push((name, data));
            }
        }
        if pos != bytes.len() {
            return Err(CcmError::Package("trailing bytes after archive".into()));
        }
        let text =
            descriptor.ok_or_else(|| CcmError::Package("archive has no softpkg.xml".into()))?;
        let mut package = Package::from_descriptor_xml(&text)?;
        package.extra_entries = extra;
        Ok(package)
    }
}

type Factory = Box<dyn Fn() -> Arc<dyn CcmComponent> + Send + Sync>;

/// Process-wide registry of component entry points — the stand-in for the
/// dynamic loader resolving a shipped binary's factory symbol.
#[derive(Default)]
pub struct FactoryRegistry {
    factories: Mutex<HashMap<String, Arc<Factory>>>,
}

impl FactoryRegistry {
    pub fn new() -> Arc<FactoryRegistry> {
        Arc::new(FactoryRegistry::default())
    }

    /// Register an entry point under a symbol name.
    pub fn register(
        &self,
        symbol: &str,
        factory: impl Fn() -> Arc<dyn CcmComponent> + Send + Sync + 'static,
    ) {
        self.factories
            .lock()
            .insert(symbol.to_string(), Arc::new(Box::new(factory)));
    }

    /// Instantiate through a symbol.
    pub fn instantiate(&self, symbol: &str) -> Result<Arc<dyn CcmComponent>, CcmError> {
        let factory = self
            .factories
            .lock()
            .get(symbol)
            .cloned()
            .ok_or_else(|| CcmError::NotFound(format!("factory symbol `{symbol}`")))?;
        Ok(factory())
    }

    pub fn symbols(&self) -> Vec<String> {
        let mut syms: Vec<String> = self.factories.lock().keys().cloned().collect();
        syms.sort();
        syms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::tests::FieldComponent;

    #[test]
    fn archive_roundtrip_plain() {
        let pkg = Package::new("chemistry", "1.2", "make_chemistry");
        let bytes = pkg.to_archive();
        assert_eq!(&bytes[..4], CAR_MAGIC);
        let back = Package::from_archive(&bytes).unwrap();
        assert_eq!(back, pkg);
    }

    #[test]
    fn archive_roundtrip_with_constraints_and_entries() {
        let mut pkg = Package::new("chemistry", "2.0", "make_chemistry")
            .restrict_to_machines(&["company-x-cluster"]);
        pkg.extra_entries
            .push(("README".into(), b"patented".to_vec()));
        let back = Package::from_archive(&pkg.to_archive()).unwrap();
        assert_eq!(back, pkg);
        assert!(back.allows_machine("company-x-cluster"));
        assert!(!back.allows_machine("public-cluster"));
        let unrestricted = Package::new("t", "1", "f");
        assert!(unrestricted.allows_machine("anywhere"));
    }

    #[test]
    fn malformed_archives_rejected() {
        assert!(Package::from_archive(b"NOPE").is_err());
        assert!(Package::from_archive(b"CAR1").is_err());
        let good = Package::new("x", "1", "f").to_archive();
        assert!(Package::from_archive(&good[..good.len() - 1]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(Package::from_archive(&trailing).is_err());
    }

    #[test]
    fn descriptor_xml_is_valid_osd_style() {
        let pkg = Package::new("transport", "1.0", "make_transport")
            .restrict_to_machines(&["m1", "m2"]);
        let xml_text = pkg.descriptor_xml();
        let parsed = padico_util::xml::parse(&xml_text).unwrap();
        assert_eq!(parsed.name, "softpkg");
        assert_eq!(
            parsed.find("localization").unwrap().find_all("allowed-machine").count(),
            2
        );
    }

    #[test]
    fn factory_registry_resolves_symbols() {
        let reg = FactoryRegistry::new();
        reg.register("make_field", || FieldComponent::new(3) as _);
        assert_eq!(reg.symbols(), vec!["make_field".to_string()]);
        let component = reg.instantiate("make_field").unwrap();
        assert_eq!(component.descriptor().name, "Field");
        assert!(matches!(
            reg.instantiate("missing"),
            Err(CcmError::NotFound(_))
        ));
    }
}
