//! A minimal naming service.
//!
//! The paper's "machine discovery" scenario needs a place where node
//! daemons advertise themselves and deployers look them up. This is a
//! flat name → IOR registry exposed as a CORBA object (a deliberately
//! small cousin of the CORBA Naming Service).

use padico_orb::cdr::{CdrReader, CdrWriter};
use padico_orb::orb::{ObjectRef, Orb};
use padico_orb::poa::{Servant, ServerCtx};
use padico_orb::{Ior, OrbError};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::CcmError;

/// The naming registry servant.
#[derive(Default)]
pub struct NamingServant {
    entries: Mutex<BTreeMap<String, String>>,
}

impl Servant for NamingServant {
    fn repository_id(&self) -> &str {
        "IDL:PadicoCCM/Naming:1.0"
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            "bind" => {
                let name = args.read_string()?;
                let ior = args.read_string()?;
                let mut entries = self.entries.lock();
                if entries.contains_key(&name) {
                    return Err(CcmError::AlreadyConnected(name).to_wire());
                }
                entries.insert(name, ior);
                Ok(())
            }
            "rebind" => {
                let name = args.read_string()?;
                let ior = args.read_string()?;
                self.entries.lock().insert(name, ior);
                Ok(())
            }
            "unbind" => {
                let name = args.read_string()?;
                match self.entries.lock().remove(&name) {
                    Some(_) => Ok(()),
                    None => Err(CcmError::NotFound(name).to_wire()),
                }
            }
            "resolve" => {
                let name = args.read_string()?;
                match self.entries.lock().get(&name) {
                    Some(ior) => {
                        reply.write_string(ior);
                        Ok(())
                    }
                    None => Err(CcmError::NotFound(name).to_wire()),
                }
            }
            "list" => {
                let prefix = args.read_string()?;
                let entries = self.entries.lock();
                let names: Vec<&String> = entries
                    .keys()
                    .filter(|k| k.starts_with(&prefix))
                    .collect();
                reply.write_u32(names.len() as u32);
                for n in names {
                    reply.write_string(n);
                }
                Ok(())
            }
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

/// Start a naming service on an ORB; returns its IOR.
pub fn start_naming(orb: &Arc<Orb>) -> Ior {
    orb.activate(Arc::new(NamingServant::default()))
}

/// Client handle to a naming service.
#[derive(Clone, Debug)]
pub struct NamingClient {
    obj: ObjectRef,
}

impl NamingClient {
    pub fn new(obj: ObjectRef) -> NamingClient {
        NamingClient { obj }
    }

    /// Bind a fresh name (fails on duplicates).
    pub fn bind(&self, name: &str, ior: &Ior) -> Result<(), CcmError> {
        self.obj
            .request("bind")
            .arg_string(name)
            .arg_string(&ior.stringify())
            .invoke()
            .map(|_| ())
            .map_err(CcmError::from)
    }

    /// Bind or replace.
    pub fn rebind(&self, name: &str, ior: &Ior) -> Result<(), CcmError> {
        self.obj
            .request("rebind")
            .arg_string(name)
            .arg_string(&ior.stringify())
            .invoke()
            .map(|_| ())
            .map_err(CcmError::from)
    }

    pub fn unbind(&self, name: &str) -> Result<(), CcmError> {
        self.obj
            .request("unbind")
            .arg_string(name)
            .invoke()
            .map(|_| ())
            .map_err(CcmError::from)
    }

    pub fn resolve(&self, name: &str) -> Result<Ior, CcmError> {
        let mut reply = self
            .obj
            .request("resolve")
            .arg_string(name)
            .invoke()
            .map_err(CcmError::from)?;
        Ok(Ior::destringify(
            &reply.read_string().map_err(CcmError::from)?,
        )?)
    }

    /// Names bound under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Result<Vec<String>, CcmError> {
        let mut reply = self
            .obj
            .request("list")
            .arg_string(prefix)
            .invoke()
            .map_err(CcmError::from)?;
        let count = reply.read_u32().map_err(CcmError::from)? as usize;
        let mut names = Vec::with_capacity(count);
        for _ in 0..count {
            names.push(reply.read_string().map_err(CcmError::from)?);
        }
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::tests::two_containers;
    use padico_util::ids::NodeId;

    fn fake_ior(n: u32) -> Ior {
        Ior {
            type_id: "IDL:X:1.0".into(),
            node: NodeId(n),
            endpoint: "giop:x".into(),
            key: padico_orb::ObjectKey(u64::from(n)),
        }
    }

    #[test]
    fn bind_resolve_list_unbind() {
        let (c0, c1) = two_containers();
        let naming_ior = start_naming(c0.orb());
        let client = NamingClient::new(c1.orb().object_ref(naming_ior));

        client.bind("daemon/a0", &fake_ior(1)).unwrap();
        client.bind("daemon/a1", &fake_ior(2)).unwrap();
        client.bind("service/naming", &fake_ior(3)).unwrap();

        assert_eq!(client.resolve("daemon/a1").unwrap(), fake_ior(2));
        assert_eq!(
            client.list("daemon/").unwrap(),
            vec!["daemon/a0".to_string(), "daemon/a1".to_string()]
        );
        assert_eq!(client.list("").unwrap().len(), 3);

        // Duplicate bind refused, rebind allowed.
        assert!(matches!(
            client.bind("daemon/a0", &fake_ior(9)),
            Err(CcmError::Remote(_))
        ));
        client.rebind("daemon/a0", &fake_ior(9)).unwrap();
        assert_eq!(client.resolve("daemon/a0").unwrap(), fake_ior(9));

        client.unbind("daemon/a0").unwrap();
        assert!(matches!(
            client.resolve("daemon/a0"),
            Err(CcmError::Remote(_))
        ));
        assert!(matches!(
            client.unbind("daemon/a0"),
            Err(CcmError::Remote(_))
        ));
    }
}
