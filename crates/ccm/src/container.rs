//! The CCM execution model: containers.
//!
//! A [`Container`] hosts component instances on one node. Installing a
//! component activates its facet and event-sink servants on the node's
//! ORB and exposes the component's *equivalent interface* (the
//! introspection/wiring operations: `provide_facet`, `connect`,
//! `subscribe`, attribute access, lifecycle) as one more CORBA object, so
//! a remote deployment engine can assemble an application entirely
//! through ORB calls — the CCM deployment model's premise.
//!
//! Lifecycle enforced per instance:
//! `Installed → (configuration_complete) → Configured → (ccm_activate) →
//! Active ⇄ Passive → (ccm_remove) → gone`.

use padico_orb::cdr::{CdrReader, CdrWriter};
use padico_orb::orb::{ObjectRef, Orb};
use padico_orb::poa::{Servant, ServerCtx};
use padico_orb::{Ior, OrbError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::component::{
    AttrValue, CcmComponent, ComponentContext, ComponentDescriptor, PortKind,
};
use crate::error::CcmError;
use crate::events::SinkServant;

/// Lifecycle states of an installed component.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lifecycle {
    Installed,
    Configured,
    Active,
    Passive,
}

struct Core {
    name: String,
    component: Arc<dyn CcmComponent>,
    descriptor: ComponentDescriptor,
    facets: HashMap<String, Ior>,
    sinks: HashMap<String, Ior>,
    orb: Arc<Orb>,
    state: Mutex<Lifecycle>,
}

impl Core {
    fn ctx(&self) -> ComponentContext {
        ComponentContext::new(Arc::clone(self.component.registry()))
    }

    fn provide_facet(&self, name: &str) -> Result<Ior, CcmError> {
        self.facets
            .get(name)
            .cloned()
            .ok_or_else(|| CcmError::NoSuchPort(format!("facet {name}")))
    }

    fn get_consumer(&self, sink: &str) -> Result<Ior, CcmError> {
        self.sinks
            .get(sink)
            .cloned()
            .ok_or_else(|| CcmError::NoSuchPort(format!("event sink {sink}")))
    }

    fn connect(&self, receptacle: &str, target_ior: Ior) -> Result<(), CcmError> {
        let target = self.orb.object_ref(target_ior);
        self.component
            .registry()
            .connect(&self.descriptor, receptacle, target)
    }

    fn disconnect(&self, receptacle: &str) -> Result<(), CcmError> {
        self.component.registry().disconnect(receptacle)
    }

    fn subscribe(&self, source: &str, sink_ior: Ior) -> Result<(), CcmError> {
        let sink = self.orb.object_ref(sink_ior);
        self.component
            .registry()
            .subscribe(&self.descriptor, source, sink)
    }

    fn set_attribute(&self, name: &str, value: AttrValue) -> Result<(), CcmError> {
        match self.descriptor.port(name) {
            Some(p) if p.kind == PortKind::Attribute => {
                self.component.registry().set_attribute(name, value);
                Ok(())
            }
            _ => Err(CcmError::NoSuchPort(format!("attribute {name}"))),
        }
    }

    fn get_attribute(&self, name: &str) -> Result<AttrValue, CcmError> {
        self.component
            .registry()
            .attribute(name)
            .ok_or_else(|| CcmError::NotFound(format!("attribute {name} not set")))
    }

    fn configuration_complete(&self) -> Result<(), CcmError> {
        let mut state = self.state.lock();
        if *state != Lifecycle::Installed {
            return Err(CcmError::Lifecycle(format!(
                "configuration_complete in state {state:?}"
            )));
        }
        self.component.configuration_complete(&self.ctx())?;
        *state = Lifecycle::Configured;
        Ok(())
    }

    fn ccm_activate(&self) -> Result<(), CcmError> {
        let mut state = self.state.lock();
        match *state {
            Lifecycle::Configured | Lifecycle::Passive => {
                self.component.ccm_activate(&self.ctx())?;
                *state = Lifecycle::Active;
                Ok(())
            }
            other => Err(CcmError::Lifecycle(format!("ccm_activate in state {other:?}"))),
        }
    }

    fn ccm_passivate(&self) -> Result<(), CcmError> {
        let mut state = self.state.lock();
        if *state != Lifecycle::Active {
            return Err(CcmError::Lifecycle(format!(
                "ccm_passivate in state {:?}",
                *state
            )));
        }
        self.component.ccm_passivate()?;
        *state = Lifecycle::Passive;
        Ok(())
    }
}

/// Local handle to an installed component.
#[derive(Clone)]
pub struct ComponentHandle {
    core: Arc<Core>,
    meta: Ior,
}

impl ComponentHandle {
    /// The component's equivalent-interface object reference (what remote
    /// deployers talk to).
    pub fn meta_ior(&self) -> &Ior {
        &self.meta
    }

    pub fn name(&self) -> &str {
        &self.core.name
    }

    pub fn descriptor(&self) -> &ComponentDescriptor {
        &self.core.descriptor
    }

    pub fn state(&self) -> Lifecycle {
        *self.core.state.lock()
    }

    pub fn provide_facet(&self, name: &str) -> Result<Ior, CcmError> {
        self.core.provide_facet(name)
    }

    pub fn get_consumer(&self, sink: &str) -> Result<Ior, CcmError> {
        self.core.get_consumer(sink)
    }

    pub fn connect(&self, receptacle: &str, target: Ior) -> Result<(), CcmError> {
        self.core.connect(receptacle, target)
    }

    pub fn disconnect(&self, receptacle: &str) -> Result<(), CcmError> {
        self.core.disconnect(receptacle)
    }

    pub fn subscribe(&self, source: &str, sink: Ior) -> Result<(), CcmError> {
        self.core.subscribe(source, sink)
    }

    pub fn set_attribute(&self, name: &str, value: AttrValue) -> Result<(), CcmError> {
        self.core.set_attribute(name, value)
    }

    pub fn configuration_complete(&self) -> Result<(), CcmError> {
        self.core.configuration_complete()
    }

    pub fn ccm_activate(&self) -> Result<(), CcmError> {
        self.core.ccm_activate()
    }

    pub fn ccm_passivate(&self) -> Result<(), CcmError> {
        self.core.ccm_passivate()
    }
}

/// The component's equivalent interface as a CORBA servant.
struct ComponentServant {
    core: Arc<Core>,
}

impl Servant for ComponentServant {
    fn repository_id(&self) -> &str {
        &self.core.descriptor.repo_id
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        let wire = |r: Result<(), CcmError>| r.map_err(|e| e.to_wire());
        match operation {
            "get_descriptor" => {
                let d = &self.core.descriptor;
                reply.write_string(&d.name);
                reply.write_string(&d.repo_id);
                reply.write_u32(d.ports.len() as u32);
                for p in &d.ports {
                    reply.write_string(&p.name);
                    reply.write_u8(match p.kind {
                        PortKind::Facet => 0,
                        PortKind::Receptacle => 1,
                        PortKind::MultiplexReceptacle => 2,
                        PortKind::EventSource => 3,
                        PortKind::EventSink => 4,
                        PortKind::Attribute => 5,
                    });
                    reply.write_string(&p.type_id);
                }
                Ok(())
            }
            "provide_facet" => {
                let name = args.read_string()?;
                let ior = self.core.provide_facet(&name).map_err(|e| e.to_wire())?;
                reply.write_string(&ior.stringify());
                Ok(())
            }
            "get_consumer" => {
                let name = args.read_string()?;
                let ior = self.core.get_consumer(&name).map_err(|e| e.to_wire())?;
                reply.write_string(&ior.stringify());
                Ok(())
            }
            "connect" => {
                let receptacle = args.read_string()?;
                let ior = Ior::destringify(&args.read_string()?)?;
                wire(self.core.connect(&receptacle, ior))
            }
            "disconnect" => {
                let receptacle = args.read_string()?;
                wire(self.core.disconnect(&receptacle))
            }
            "subscribe" => {
                let source = args.read_string()?;
                let ior = Ior::destringify(&args.read_string()?)?;
                wire(self.core.subscribe(&source, ior))
            }
            "set_attribute" => {
                let name = args.read_string()?;
                let value = AttrValue::read(args)?;
                wire(self.core.set_attribute(&name, value))
            }
            "get_attribute" => {
                let name = args.read_string()?;
                let value = self.core.get_attribute(&name).map_err(|e| e.to_wire())?;
                value.write(reply);
                Ok(())
            }
            "configuration_complete" => wire(self.core.configuration_complete()),
            "ccm_activate" => wire(self.core.ccm_activate()),
            "ccm_passivate" => wire(self.core.ccm_passivate()),
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

/// A container hosting component instances on one node.
pub struct Container {
    orb: Arc<Orb>,
    instances: Mutex<HashMap<String, ComponentHandle>>,
}

impl Container {
    pub fn new(orb: Arc<Orb>) -> Arc<Container> {
        Arc::new(Container {
            orb,
            instances: Mutex::new(HashMap::new()),
        })
    }

    pub fn orb(&self) -> &Arc<Orb> {
        &self.orb
    }

    /// Install a component instance under a unique name; activates its
    /// ports on the ORB and returns the handle.
    pub fn install(
        &self,
        name: &str,
        component: Arc<dyn CcmComponent>,
    ) -> Result<ComponentHandle, CcmError> {
        {
            let instances = self.instances.lock();
            if instances.contains_key(name) {
                return Err(CcmError::Lifecycle(format!(
                    "instance `{name}` already installed"
                )));
            }
        }
        let descriptor = component.descriptor();
        let mut facets = HashMap::new();
        for port in descriptor.ports_of_kind(PortKind::Facet) {
            let servant = component.facet_servant(&port.name)?;
            facets.insert(port.name.clone(), self.orb.activate(servant));
        }
        let mut sinks = HashMap::new();
        for port in descriptor.ports_of_kind(PortKind::EventSink) {
            let servant = Arc::new(SinkServant {
                component: Arc::clone(&component),
                sink_name: port.name.clone(),
                event_type_id: port.type_id.clone(),
            });
            sinks.insert(port.name.clone(), self.orb.activate(servant));
        }
        let core = Arc::new(Core {
            name: name.to_string(),
            component,
            descriptor,
            facets,
            sinks,
            orb: Arc::clone(&self.orb),
            state: Mutex::new(Lifecycle::Installed),
        });
        let meta = self.orb.activate(Arc::new(ComponentServant {
            core: Arc::clone(&core),
        }));
        let handle = ComponentHandle { core, meta };
        self.instances
            .lock()
            .insert(name.to_string(), handle.clone());
        Ok(handle)
    }

    /// Remove an instance: lifecycle `ccm_remove`, then deactivate every
    /// servant the install created.
    pub fn remove(&self, name: &str) -> Result<(), CcmError> {
        let handle = self
            .instances
            .lock()
            .remove(name)
            .ok_or_else(|| CcmError::NotFound(format!("instance `{name}`")))?;
        handle.core.component.ccm_remove()?;
        for ior in handle.core.facets.values().chain(handle.core.sinks.values()) {
            let _ = self.orb.deactivate(ior);
        }
        let _ = self.orb.deactivate(&handle.meta);
        Ok(())
    }

    /// Look up an installed instance.
    pub fn instance(&self, name: &str) -> Option<ComponentHandle> {
        self.instances.lock().get(name).cloned()
    }

    /// Names of installed instances (sorted).
    pub fn instances(&self) -> Vec<String> {
        let mut names: Vec<String> = self.instances.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

/// Remote-side client for a component's equivalent interface.
#[derive(Clone, Debug)]
pub struct RemoteComponent {
    obj: ObjectRef,
}

impl RemoteComponent {
    pub fn new(obj: ObjectRef) -> RemoteComponent {
        RemoteComponent { obj }
    }

    pub fn object(&self) -> &ObjectRef {
        &self.obj
    }

    pub fn provide_facet(&self, name: &str) -> Result<Ior, CcmError> {
        let mut reply = self
            .obj
            .request("provide_facet")
            .arg_string(name)
            .invoke()
            .map_err(CcmError::from)?;
        Ok(Ior::destringify(&reply.read_string().map_err(CcmError::from)?)?)
    }

    pub fn get_consumer(&self, sink: &str) -> Result<Ior, CcmError> {
        let mut reply = self
            .obj
            .request("get_consumer")
            .arg_string(sink)
            .invoke()
            .map_err(CcmError::from)?;
        Ok(Ior::destringify(&reply.read_string().map_err(CcmError::from)?)?)
    }

    pub fn connect(&self, receptacle: &str, target: &Ior) -> Result<(), CcmError> {
        self.obj
            .request("connect")
            .arg_string(receptacle)
            .arg_string(&target.stringify())
            .invoke()
            .map(|_| ())
            .map_err(CcmError::from)
    }

    pub fn disconnect(&self, receptacle: &str) -> Result<(), CcmError> {
        self.obj
            .request("disconnect")
            .arg_string(receptacle)
            .invoke()
            .map(|_| ())
            .map_err(CcmError::from)
    }

    pub fn subscribe(&self, source: &str, sink: &Ior) -> Result<(), CcmError> {
        self.obj
            .request("subscribe")
            .arg_string(source)
            .arg_string(&sink.stringify())
            .invoke()
            .map(|_| ())
            .map_err(CcmError::from)
    }

    pub fn set_attribute(&self, name: &str, value: &AttrValue) -> Result<(), CcmError> {
        let mut req = self.obj.request("set_attribute").arg_string(name);
        value.write(req.writer());
        req.invoke().map(|_| ()).map_err(CcmError::from)
    }

    pub fn get_attribute(&self, name: &str) -> Result<AttrValue, CcmError> {
        let mut reply = self
            .obj
            .request("get_attribute")
            .arg_string(name)
            .invoke()
            .map_err(CcmError::from)?;
        AttrValue::read(&mut reply).map_err(CcmError::from)
    }

    pub fn configuration_complete(&self) -> Result<(), CcmError> {
        self.obj
            .request("configuration_complete")
            .invoke()
            .map(|_| ())
            .map_err(CcmError::from)
    }

    pub fn ccm_activate(&self) -> Result<(), CcmError> {
        self.obj
            .request("ccm_activate")
            .invoke()
            .map(|_| ())
            .map_err(CcmError::from)
    }

    pub fn ccm_passivate(&self) -> Result<(), CcmError> {
        self.obj
            .request("ccm_passivate")
            .invoke()
            .map(|_| ())
            .map_err(CcmError::from)
    }

    /// Fetch the remote component's descriptor.
    pub fn get_descriptor(&self) -> Result<ComponentDescriptor, CcmError> {
        let mut r = self
            .obj
            .request("get_descriptor")
            .invoke()
            .map_err(CcmError::from)?;
        let name = r.read_string().map_err(CcmError::from)?;
        let repo_id = r.read_string().map_err(CcmError::from)?;
        let count = r.read_u32().map_err(CcmError::from)? as usize;
        let mut ports = Vec::with_capacity(count);
        for _ in 0..count {
            let pname = r.read_string().map_err(CcmError::from)?;
            let kind = match r.read_u8().map_err(CcmError::from)? {
                0 => PortKind::Facet,
                1 => PortKind::Receptacle,
                2 => PortKind::MultiplexReceptacle,
                3 => PortKind::EventSource,
                4 => PortKind::EventSink,
                5 => PortKind::Attribute,
                other => {
                    return Err(CcmError::Descriptor(format!("bad port kind {other}")))
                }
            };
            let type_id = r.read_string().map_err(CcmError::from)?;
            ports.push(crate::component::PortDesc {
                name: pname,
                kind,
                type_id,
            });
        }
        Ok(ComponentDescriptor {
            name,
            repo_id,
            ports,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::component::{PortDesc, PortRegistry};
    use crate::events::Event;
    use padico_fabric::topology::single_cluster;
    use padico_orb::profile::OrbProfile;
    use padico_tm::runtime::PadicoTM;
    use padico_tm::selector::FabricChoice;
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

    /// A minimal "field provider" component used across the CCM tests:
    /// one facet (`field`, op `get_value`), one receptacle (`input`), one
    /// event source (`tick`), one sink (`steer`), one attribute (`scale`).
    pub(crate) struct FieldState {
        pub registry: Arc<PortRegistry>,
        pub value: AtomicI64,
        pub events_seen: AtomicUsize,
        pub configured: AtomicUsize,
        pub activated: AtomicUsize,
        pub removed: AtomicUsize,
    }

    pub(crate) struct FieldComponent {
        pub state: Arc<FieldState>,
    }

    impl FieldComponent {
        pub fn new(value: i64) -> Arc<FieldComponent> {
            Arc::new(FieldComponent {
                state: Arc::new(FieldState {
                    registry: Arc::new(PortRegistry::new()),
                    value: AtomicI64::new(value),
                    events_seen: AtomicUsize::new(0),
                    configured: AtomicUsize::new(0),
                    activated: AtomicUsize::new(0),
                    removed: AtomicUsize::new(0),
                }),
            })
        }
    }

    struct FieldFacet {
        state: Arc<FieldState>,
    }

    impl Servant for FieldFacet {
        fn repository_id(&self) -> &str {
            "IDL:Test/Field:1.0"
        }

        fn dispatch(
            &self,
            operation: &str,
            _args: &mut CdrReader,
            reply: &mut CdrWriter,
            _ctx: &ServerCtx,
        ) -> Result<(), OrbError> {
            match operation {
                "get_value" => {
                    reply.write_i64(self.state.value.load(Ordering::SeqCst));
                    Ok(())
                }
                other => Err(OrbError::BadOperation(other.into())),
            }
        }
    }

    impl CcmComponent for FieldComponent {
        fn descriptor(&self) -> ComponentDescriptor {
            ComponentDescriptor {
                name: "Field".into(),
                repo_id: "IDL:Test/FieldComponent:1.0".into(),
                ports: vec![
                    PortDesc::new("field", PortKind::Facet, "IDL:Test/Field:1.0"),
                    PortDesc::new("input", PortKind::Receptacle, "IDL:Test/Field:1.0"),
                    PortDesc::new("tick", PortKind::EventSource, "IDL:Test/Tick:1.0"),
                    PortDesc::new("steer", PortKind::EventSink, "IDL:Test/Tick:1.0"),
                    PortDesc::new("scale", PortKind::Attribute, "double"),
                ],
            }
        }

        fn registry(&self) -> &Arc<PortRegistry> {
            &self.state.registry
        }

        fn facet_servant(&self, name: &str) -> Result<Arc<dyn Servant>, CcmError> {
            match name {
                "field" => Ok(Arc::new(FieldFacet {
                    state: Arc::clone(&self.state),
                })),
                other => Err(CcmError::NoSuchPort(other.into())),
            }
        }

        fn push_event(&self, sink: &str, _event: Event) -> Result<(), CcmError> {
            if sink != "steer" {
                return Err(CcmError::NoSuchPort(sink.into()));
            }
            self.state.events_seen.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }

        fn configuration_complete(&self, _ctx: &ComponentContext) -> Result<(), CcmError> {
            self.state.configured.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }

        fn ccm_activate(&self, _ctx: &ComponentContext) -> Result<(), CcmError> {
            self.state.activated.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }

        fn ccm_remove(&self) -> Result<(), CcmError> {
            self.state.removed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    pub(crate) fn two_containers() -> (Arc<Container>, Arc<Container>) {
        let (topo, _ids) = single_cluster(2);
        let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
        let orb0 = Orb::start(
            Arc::clone(&tms[0]),
            "ccm",
            OrbProfile::omniorb3(),
            FabricChoice::Auto,
        )
        .unwrap();
        let orb1 = Orb::start(
            Arc::clone(&tms[1]),
            "ccm",
            OrbProfile::omniorb3(),
            FabricChoice::Auto,
        )
        .unwrap();
        (Container::new(orb0), Container::new(orb1))
    }

    #[test]
    fn install_activates_ports_and_lifecycle_runs() {
        let (c0, _c1) = two_containers();
        let comp = FieldComponent::new(5);
        let state = Arc::clone(&comp.state);
        let handle = c0.install("field0", comp).unwrap();
        assert_eq!(handle.state(), Lifecycle::Installed);
        assert!(handle.provide_facet("field").is_ok());
        assert!(handle.get_consumer("steer").is_ok());
        handle.configuration_complete().unwrap();
        assert_eq!(handle.state(), Lifecycle::Configured);
        handle.ccm_activate().unwrap();
        assert_eq!(handle.state(), Lifecycle::Active);
        handle.ccm_passivate().unwrap();
        assert_eq!(handle.state(), Lifecycle::Passive);
        handle.ccm_activate().unwrap();
        assert_eq!(state.configured.load(Ordering::SeqCst), 1);
        assert_eq!(state.activated.load(Ordering::SeqCst), 2);
        c0.remove("field0").unwrap();
        assert_eq!(state.removed.load(Ordering::SeqCst), 1);
        assert!(c0.instance("field0").is_none());
    }

    #[test]
    fn lifecycle_violations_are_rejected() {
        let (c0, _c1) = two_containers();
        let handle = c0.install("f", FieldComponent::new(0)).unwrap();
        assert!(matches!(
            handle.ccm_activate(),
            Err(CcmError::Lifecycle(_))
        ));
        handle.configuration_complete().unwrap();
        assert!(matches!(
            handle.configuration_complete(),
            Err(CcmError::Lifecycle(_))
        ));
        assert!(matches!(
            handle.ccm_passivate(),
            Err(CcmError::Lifecycle(_))
        ));
    }

    #[test]
    fn duplicate_instance_names_rejected() {
        let (c0, _c1) = two_containers();
        c0.install("x", FieldComponent::new(0)).unwrap();
        assert!(matches!(
            c0.install("x", FieldComponent::new(1)),
            Err(CcmError::Lifecycle(_))
        ));
        assert_eq!(c0.instances(), vec!["x".to_string()]);
    }

    #[test]
    fn remote_wiring_through_equivalent_interface() {
        // Deployer-style wiring: all calls go through the ORB.
        let (c0, c1) = two_containers();
        let provider = c0.install("provider", FieldComponent::new(42)).unwrap();
        let user_comp = FieldComponent::new(0);
        let user_state = Arc::clone(&user_comp.state);
        let user = c1.install("user", user_comp).unwrap();

        // A third party (here: c1's ORB) wires them remotely.
        let remote_provider =
            RemoteComponent::new(c1.orb().object_ref(provider.meta_ior().clone()));
        let remote_user = RemoteComponent::new(c1.orb().object_ref(user.meta_ior().clone()));

        let facet = remote_provider.provide_facet("field").unwrap();
        remote_user.connect("input", &facet).unwrap();
        remote_user
            .set_attribute("scale", &AttrValue::Double(2.0))
            .unwrap();
        remote_provider.configuration_complete().unwrap();
        remote_user.configuration_complete().unwrap();
        remote_provider.ccm_activate().unwrap();
        remote_user.ccm_activate().unwrap();

        // The user component can now call through its receptacle.
        let conn = user_state.registry.receptacle("input").unwrap();
        let mut reply = conn.request("get_value").invoke().unwrap();
        assert_eq!(reply.read_i64().unwrap(), 42);
        assert_eq!(
            remote_user.get_attribute("scale").unwrap(),
            AttrValue::Double(2.0)
        );
    }

    #[test]
    fn remote_errors_carry_ccm_diagnostics() {
        let (c0, c1) = two_containers();
        let handle = c0.install("p", FieldComponent::new(1)).unwrap();
        let remote = RemoteComponent::new(c1.orb().object_ref(handle.meta_ior().clone()));
        let err = remote.provide_facet("no_such_facet").unwrap_err();
        assert!(
            matches!(&err, CcmError::Remote(msg) if msg.contains("no_such_facet")),
            "{err:?}"
        );
        let err = remote.get_attribute("unset").unwrap_err();
        assert!(matches!(err, CcmError::Remote(_)));
    }

    #[test]
    fn simple_receptacle_rejects_second_connection() {
        let (c0, _c1) = two_containers();
        let a = c0.install("a", FieldComponent::new(1)).unwrap();
        let b = c0.install("b", FieldComponent::new(2)).unwrap();
        let facet = a.provide_facet("field").unwrap();
        b.connect("input", facet.clone()).unwrap();
        assert!(matches!(
            b.connect("input", facet.clone()),
            Err(CcmError::AlreadyConnected(_))
        ));
        b.disconnect("input").unwrap();
        b.connect("input", facet).unwrap();
    }

    #[test]
    fn events_flow_from_source_to_sink() {
        let (c0, c1) = two_containers();
        let publisher_comp = FieldComponent::new(0);
        let publisher_state = Arc::clone(&publisher_comp.state);
        let publisher = c0.install("pub", publisher_comp).unwrap();
        let consumer_comp = FieldComponent::new(0);
        let consumer_state = Arc::clone(&consumer_comp.state);
        let consumer = c1.install("sub", consumer_comp).unwrap();

        let sink_ior = consumer.get_consumer("steer").unwrap();
        publisher.subscribe("tick", sink_ior).unwrap();
        publisher.configuration_complete().unwrap();
        publisher.ccm_activate().unwrap();

        // The publisher emits through its context.
        let ctx = ComponentContext::new(Arc::clone(&publisher_state.registry));
        let delivered = ctx
            .emit("tick", &Event::new("IDL:Test/Tick:1.0", vec![1]))
            .unwrap();
        assert_eq!(delivered, 1);
        // Oneway delivery: poll for arrival.
        for _ in 0..200 {
            if consumer_state.events_seen.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(consumer_state.events_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn remote_descriptor_introspection() {
        let (c0, c1) = two_containers();
        let handle = c0.install("f", FieldComponent::new(1)).unwrap();
        let remote = RemoteComponent::new(c1.orb().object_ref(handle.meta_ior().clone()));
        let desc = remote.get_descriptor().unwrap();
        assert_eq!(desc.name, "Field");
        assert_eq!(desc.ports.len(), 5);
        assert_eq!(desc.port("field").unwrap().kind, PortKind::Facet);
        assert_eq!(desc.port("steer").unwrap().kind, PortKind::EventSink);
    }
}
