//! The CCM abstract model: components and their ports.
//!
//! A component interacts with the world through typed ports (paper
//! Figure 2): **facets** (provided interfaces), **receptacles** (used
//! interfaces, simple or multiplex), **event sources/sinks**, and
//! **attributes**. [`CcmComponent`] is the trait user components
//! implement; [`PortRegistry`] is the embeddable state holder that gives
//! them the connection/attribute machinery for free.

use padico_orb::cdr::{CdrReader, CdrWriter};
use padico_orb::orb::ObjectRef;
use padico_orb::poa::Servant;
use padico_orb::OrbError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::CcmError;
use crate::events::Event;

/// Kind of a component port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortKind {
    /// Provided interface.
    Facet,
    /// Used interface, at most one connection.
    Receptacle,
    /// Used interface, any number of connections.
    MultiplexReceptacle,
    /// Event publisher.
    EventSource,
    /// Event consumer.
    EventSink,
    /// Configuration attribute.
    Attribute,
}

/// Description of one port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortDesc {
    pub name: String,
    pub kind: PortKind,
    /// Interface repository id (facets/receptacles) or event/attribute
    /// type id.
    pub type_id: String,
}

impl PortDesc {
    pub fn new(name: impl Into<String>, kind: PortKind, type_id: impl Into<String>) -> PortDesc {
        PortDesc {
            name: name.into(),
            kind,
            type_id: type_id.into(),
        }
    }
}

/// Introspectable description of a component type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentDescriptor {
    /// Component type name, e.g. `"ChemistryComponent"`.
    pub name: String,
    /// Repository id of the component's equivalent interface.
    pub repo_id: String,
    pub ports: Vec<PortDesc>,
}

impl ComponentDescriptor {
    pub fn port(&self, name: &str) -> Option<&PortDesc> {
        self.ports.iter().find(|p| p.name == name)
    }

    pub fn ports_of_kind(&self, kind: PortKind) -> impl Iterator<Item = &PortDesc> {
        self.ports.iter().filter(move |p| p.kind == kind)
    }
}

/// Typed attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    Long(i32),
    Double(f64),
    Str(String),
    Boolean(bool),
}

impl AttrValue {
    /// CDR-encode with a leading type tag.
    pub fn write(&self, w: &mut CdrWriter) {
        match self {
            AttrValue::Long(v) => {
                w.write_u8(0);
                w.write_i32(*v);
            }
            AttrValue::Double(v) => {
                w.write_u8(1);
                w.write_f64(*v);
            }
            AttrValue::Str(v) => {
                w.write_u8(2);
                w.write_string(v);
            }
            AttrValue::Boolean(v) => {
                w.write_u8(3);
                w.write_bool(*v);
            }
        }
    }

    /// Decode a tagged value.
    pub fn read(r: &mut CdrReader) -> Result<AttrValue, OrbError> {
        Ok(match r.read_u8()? {
            0 => AttrValue::Long(r.read_i32()?),
            1 => AttrValue::Double(r.read_f64()?),
            2 => AttrValue::Str(r.read_string()?),
            3 => AttrValue::Boolean(r.read_bool()?),
            other => return Err(OrbError::Marshal(format!("bad attr tag {other}"))),
        })
    }

    /// Parse from an assembly descriptor's `(type, text)` pair.
    pub fn parse(kind: &str, text: &str) -> Result<AttrValue, CcmError> {
        fn bad<E>(kind: &str, text: &str) -> impl FnOnce(E) -> CcmError {
            let msg = format!("bad {kind} attribute value `{text}`");
            move |_| CcmError::Descriptor(msg)
        }
        Ok(match kind {
            "long" => AttrValue::Long(text.parse().map_err(bad(kind, text))?),
            "double" => AttrValue::Double(text.parse().map_err(bad(kind, text))?),
            "string" => AttrValue::Str(text.to_string()),
            "boolean" => AttrValue::Boolean(text.parse().map_err(bad(kind, text))?),
            other => {
                return Err(CcmError::Descriptor(format!("unknown attribute type `{other}`")))
            }
        })
    }
}

/// Connection and attribute state every component embeds.
#[derive(Default)]
pub struct PortRegistry {
    receptacles: Mutex<HashMap<String, Vec<ObjectRef>>>,
    subscribers: Mutex<HashMap<String, Vec<ObjectRef>>>,
    attributes: Mutex<HashMap<String, AttrValue>>,
}

impl PortRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn connect(
        &self,
        desc: &ComponentDescriptor,
        receptacle: &str,
        target: ObjectRef,
    ) -> Result<(), CcmError> {
        let port = desc
            .port(receptacle)
            .ok_or_else(|| CcmError::NoSuchPort(receptacle.to_string()))?;
        match port.kind {
            PortKind::Receptacle => {
                let mut slots = self.receptacles.lock();
                let slot = slots.entry(receptacle.to_string()).or_default();
                if !slot.is_empty() {
                    return Err(CcmError::AlreadyConnected(receptacle.to_string()));
                }
                slot.push(target);
                Ok(())
            }
            PortKind::MultiplexReceptacle => {
                self.receptacles
                    .lock()
                    .entry(receptacle.to_string())
                    .or_default()
                    .push(target);
                Ok(())
            }
            _ => Err(CcmError::NoSuchPort(format!(
                "{receptacle} is not a receptacle"
            ))),
        }
    }

    pub(crate) fn disconnect(&self, receptacle: &str) -> Result<(), CcmError> {
        match self.receptacles.lock().remove(receptacle) {
            Some(_) => Ok(()),
            None => Err(CcmError::NoSuchPort(format!(
                "{receptacle} has no connection"
            ))),
        }
    }

    pub(crate) fn subscribe(
        &self,
        desc: &ComponentDescriptor,
        source: &str,
        sink: ObjectRef,
    ) -> Result<(), CcmError> {
        let port = desc
            .port(source)
            .ok_or_else(|| CcmError::NoSuchPort(source.to_string()))?;
        if port.kind != PortKind::EventSource {
            return Err(CcmError::NoSuchPort(format!(
                "{source} is not an event source"
            )));
        }
        self.subscribers
            .lock()
            .entry(source.to_string())
            .or_default()
            .push(sink);
        Ok(())
    }

    /// The single connection of a simple receptacle.
    pub fn receptacle(&self, name: &str) -> Option<ObjectRef> {
        self.receptacles
            .lock()
            .get(name)
            .and_then(|v| v.first().cloned())
    }

    /// All connections of a (multiplex) receptacle.
    pub fn receptacles(&self, name: &str) -> Vec<ObjectRef> {
        self.receptacles.lock().get(name).cloned().unwrap_or_default()
    }

    /// Subscribed sinks of an event source.
    pub fn subscribers(&self, source: &str) -> Vec<ObjectRef> {
        self.subscribers.lock().get(source).cloned().unwrap_or_default()
    }

    pub fn set_attribute(&self, name: &str, value: AttrValue) {
        self.attributes.lock().insert(name.to_string(), value);
    }

    pub fn attribute(&self, name: &str) -> Option<AttrValue> {
        self.attributes.lock().get(name).cloned()
    }
}

/// What a component sees of its container at lifecycle time.
pub struct ComponentContext {
    registry: Arc<PortRegistry>,
}

impl ComponentContext {
    /// Build a context over a registry. Containers do this internally;
    /// it is public so custom hosts and test harnesses can drive the
    /// lifecycle directly.
    pub fn new(registry: Arc<PortRegistry>) -> Self {
        ComponentContext { registry }
    }

    /// The connected object of a simple receptacle (the "uses" side).
    pub fn get_connection(&self, receptacle: &str) -> Result<ObjectRef, CcmError> {
        self.registry
            .receptacle(receptacle)
            .ok_or_else(|| CcmError::NoSuchPort(format!("{receptacle} not connected")))
    }

    /// All connections of a multiplex receptacle.
    pub fn get_connections(&self, receptacle: &str) -> Vec<ObjectRef> {
        self.registry.receptacles(receptacle)
    }

    /// Push an event to every subscriber of `source` (oneway).
    pub fn emit(&self, source: &str, event: &Event) -> Result<usize, CcmError> {
        let sinks = self.registry.subscribers(source);
        for sink in &sinks {
            event.push_to(sink)?;
        }
        Ok(sinks.len())
    }

    /// Read an attribute set by configuration.
    pub fn attribute(&self, name: &str) -> Option<AttrValue> {
        self.registry.attribute(name)
    }
}

/// A CCM component implementation.
pub trait CcmComponent: Send + Sync {
    /// Introspectable type description.
    fn descriptor(&self) -> ComponentDescriptor;

    /// The embedded port registry.
    fn registry(&self) -> &Arc<PortRegistry>;

    /// Produce the servant implementing a facet. Called once per facet at
    /// install time.
    fn facet_servant(&self, name: &str) -> Result<Arc<dyn Servant>, CcmError>;

    /// Deliver an event to one of the component's sinks.
    fn push_event(&self, sink: &str, _event: Event) -> Result<(), CcmError> {
        Err(CcmError::NoSuchPort(format!("event sink {sink}")))
    }

    /// All connections are made; attributes are set.
    fn configuration_complete(&self, _ctx: &ComponentContext) -> Result<(), CcmError> {
        Ok(())
    }

    /// The container moves the component to the running state.
    fn ccm_activate(&self, _ctx: &ComponentContext) -> Result<(), CcmError> {
        Ok(())
    }

    /// The container suspends the component.
    fn ccm_passivate(&self) -> Result<(), CcmError> {
        Ok(())
    }

    /// The component is being destroyed.
    fn ccm_remove(&self) -> Result<(), CcmError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padico_orb::profile::MarshalStrategy;

    fn desc() -> ComponentDescriptor {
        ComponentDescriptor {
            name: "Transport".into(),
            repo_id: "IDL:Coupling/Transport:1.0".into(),
            ports: vec![
                PortDesc::new("porosity", PortKind::Facet, "IDL:Coupling/Field:1.0"),
                PortDesc::new("density", PortKind::Receptacle, "IDL:Coupling/Field:1.0"),
                PortDesc::new(
                    "observers",
                    PortKind::MultiplexReceptacle,
                    "IDL:Coupling/Observer:1.0",
                ),
                PortDesc::new("step_done", PortKind::EventSource, "IDL:Coupling/Tick:1.0"),
                PortDesc::new("steer", PortKind::EventSink, "IDL:Coupling/Tick:1.0"),
                PortDesc::new("tolerance", PortKind::Attribute, "double"),
            ],
        }
    }

    #[test]
    fn descriptor_lookup() {
        let d = desc();
        assert_eq!(d.port("porosity").unwrap().kind, PortKind::Facet);
        assert!(d.port("nope").is_none());
        assert_eq!(d.ports_of_kind(PortKind::Facet).count(), 1);
        assert_eq!(d.ports_of_kind(PortKind::EventSource).count(), 1);
    }

    #[test]
    fn attr_value_cdr_roundtrip() {
        for v in [
            AttrValue::Long(-7),
            AttrValue::Double(2.75),
            AttrValue::Str("ok".into()),
            AttrValue::Boolean(true),
        ] {
            let mut w = CdrWriter::new(MarshalStrategy::Copying);
            v.write(&mut w);
            let mut r = CdrReader::new(&w.finish());
            assert_eq!(AttrValue::read(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn attr_value_parse() {
        assert_eq!(
            AttrValue::parse("long", "42").unwrap(),
            AttrValue::Long(42)
        );
        assert_eq!(
            AttrValue::parse("double", "0.5").unwrap(),
            AttrValue::Double(0.5)
        );
        assert_eq!(
            AttrValue::parse("boolean", "true").unwrap(),
            AttrValue::Boolean(true)
        );
        assert!(AttrValue::parse("long", "xyz").is_err());
        assert!(AttrValue::parse("matrix", "1").is_err());
    }

    #[test]
    fn registry_attribute_store() {
        let reg = PortRegistry::new();
        assert!(reg.attribute("tolerance").is_none());
        reg.set_attribute("tolerance", AttrValue::Double(1e-6));
        assert_eq!(reg.attribute("tolerance"), Some(AttrValue::Double(1e-6)));
        reg.set_attribute("tolerance", AttrValue::Double(1e-3));
        assert_eq!(reg.attribute("tolerance"), Some(AttrValue::Double(1e-3)));
    }

    // Receptacle connect/disconnect rules need ObjectRefs, which need a
    // running ORB — covered by container tests.
}
