//! Assembly descriptors: the CAD-style XML describing which components an
//! application is made of, where they may run, and how they are wired.
//!
//! ```xml
//! <assembly name="coupling">
//!   <component id="chem" package="chemistry">
//!     <placement machine="company-x-cluster"/>
//!     <attribute name="tolerance" type="double" value="0.001"/>
//!   </component>
//!   <component id="trans" package="transport">
//!     <placement node="a0"/>
//!   </component>
//!   <connection id="c1">
//!     <provides component="chem" facet="density"/>
//!     <uses component="trans" receptacle="density"/>
//!   </connection>
//!   <event-connection id="e1">
//!     <publisher component="trans" source="step_done"/>
//!     <consumer component="chem" sink="steer"/>
//!   </event-connection>
//! </assembly>
//! ```

use padico_util::xml::{self, Element};

use crate::component::AttrValue;
use crate::error::CcmError;

/// Where a component instance may be placed.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Placement {
    /// Any node whose machine the package allows.
    #[default]
    Any,
    /// A specific node by name.
    Node(String),
    /// Any node of a machine.
    Machine(String),
}

/// One component instance in the assembly.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentInstance {
    /// Instance id, unique in the assembly.
    pub id: String,
    /// Package (component type) to instantiate.
    pub package: String,
    pub placement: Placement,
    /// Attribute settings applied before `configuration_complete`.
    pub attributes: Vec<(String, AttrValue)>,
    /// GridCCM extension: number of SPMD replicas (1 = sequential).
    pub replicas: usize,
}

/// A facet → receptacle connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Connection {
    pub id: String,
    pub provider: String,
    pub facet: String,
    pub user: String,
    pub receptacle: String,
}

/// An event source → sink connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventConnection {
    pub id: String,
    pub publisher: String,
    pub source: String,
    pub consumer: String,
    pub sink: String,
}

/// A parsed assembly.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Assembly {
    pub name: String,
    pub components: Vec<ComponentInstance>,
    pub connections: Vec<Connection>,
    pub event_connections: Vec<EventConnection>,
}

impl Assembly {
    /// Parse from CAD-style XML.
    pub fn parse(text: &str) -> Result<Assembly, CcmError> {
        let root = xml::parse(text)?;
        if root.name != "assembly" {
            return Err(CcmError::Descriptor(format!(
                "expected <assembly>, found <{}>",
                root.name
            )));
        }
        let name = root
            .get_attr("name")
            .ok_or_else(|| CcmError::Descriptor("assembly without name".into()))?
            .to_string();

        let mut components = Vec::new();
        for el in root.find_all("component") {
            components.push(Self::parse_component(el)?);
        }
        let mut assembly = Assembly {
            name,
            components,
            connections: Vec::new(),
            event_connections: Vec::new(),
        };
        for el in root.find_all("connection") {
            assembly.connections.push(Self::parse_connection(el)?);
        }
        for el in root.find_all("event-connection") {
            assembly
                .event_connections
                .push(Self::parse_event_connection(el)?);
        }
        assembly.validate()?;
        Ok(assembly)
    }

    fn parse_component(el: &Element) -> Result<ComponentInstance, CcmError> {
        let id = el
            .get_attr("id")
            .ok_or_else(|| CcmError::Descriptor("component without id".into()))?
            .to_string();
        let package = el
            .get_attr("package")
            .ok_or_else(|| CcmError::Descriptor(format!("component {id} without package")))?
            .to_string();
        let placement = match el.find("placement") {
            None => Placement::Any,
            Some(p) => match (p.get_attr("node"), p.get_attr("machine")) {
                (Some(node), None) => Placement::Node(node.to_string()),
                (None, Some(machine)) => Placement::Machine(machine.to_string()),
                (None, None) => Placement::Any,
                (Some(_), Some(_)) => {
                    return Err(CcmError::Descriptor(format!(
                        "component {id}: placement cannot name both node and machine"
                    )))
                }
            },
        };
        let mut attributes = Vec::new();
        for attr in el.find_all("attribute") {
            let name = attr
                .get_attr("name")
                .ok_or_else(|| CcmError::Descriptor("attribute without name".into()))?;
            let kind = attr.get_attr("type").unwrap_or("string");
            let value = attr
                .get_attr("value")
                .ok_or_else(|| CcmError::Descriptor(format!("attribute {name} without value")))?;
            attributes.push((name.to_string(), AttrValue::parse(kind, value)?));
        }
        let replicas = match el.find("parallel") {
            None => 1,
            Some(p) => p
                .get_attr("replicas")
                .ok_or_else(|| CcmError::Descriptor("parallel without replicas".into()))?
                .parse::<usize>()
                .map_err(|_| CcmError::Descriptor("bad replicas count".into()))?,
        };
        if replicas == 0 {
            return Err(CcmError::Descriptor(format!(
                "component {id}: replicas must be at least 1"
            )));
        }
        Ok(ComponentInstance {
            id,
            package,
            placement,
            attributes,
            replicas,
        })
    }

    fn parse_connection(el: &Element) -> Result<Connection, CcmError> {
        let id = el.get_attr("id").unwrap_or("conn").to_string();
        let provides = el
            .find("provides")
            .ok_or_else(|| CcmError::Descriptor(format!("connection {id} without <provides>")))?;
        let uses = el
            .find("uses")
            .ok_or_else(|| CcmError::Descriptor(format!("connection {id} without <uses>")))?;
        let attr = |e: &Element, a: &str| -> Result<String, CcmError> {
            e.get_attr(a)
                .map(str::to_string)
                .ok_or_else(|| CcmError::Descriptor(format!("connection {id}: missing {a}")))
        };
        Ok(Connection {
            provider: attr(provides, "component")?,
            facet: attr(provides, "facet")?,
            user: attr(uses, "component")?,
            receptacle: attr(uses, "receptacle")?,
            id,
        })
    }

    fn parse_event_connection(el: &Element) -> Result<EventConnection, CcmError> {
        let id = el.get_attr("id").unwrap_or("event").to_string();
        let publisher = el.find("publisher").ok_or_else(|| {
            CcmError::Descriptor(format!("event-connection {id} without <publisher>"))
        })?;
        let consumer = el.find("consumer").ok_or_else(|| {
            CcmError::Descriptor(format!("event-connection {id} without <consumer>"))
        })?;
        let attr = |e: &Element, a: &str| -> Result<String, CcmError> {
            e.get_attr(a)
                .map(str::to_string)
                .ok_or_else(|| CcmError::Descriptor(format!("event-connection {id}: missing {a}")))
        };
        Ok(EventConnection {
            publisher: attr(publisher, "component")?,
            source: attr(publisher, "source")?,
            consumer: attr(consumer, "component")?,
            sink: attr(consumer, "sink")?,
            id,
        })
    }

    /// Cross-reference validation: unique ids, connections name known
    /// components.
    pub fn validate(&self) -> Result<(), CcmError> {
        let mut seen = std::collections::HashSet::new();
        for c in &self.components {
            if !seen.insert(&c.id) {
                return Err(CcmError::Descriptor(format!(
                    "duplicate component id `{}`",
                    c.id
                )));
            }
        }
        let known = |id: &str| self.components.iter().any(|c| c.id == id);
        for conn in &self.connections {
            for end in [&conn.provider, &conn.user] {
                if !known(end) {
                    return Err(CcmError::Descriptor(format!(
                        "connection `{}` names unknown component `{end}`",
                        conn.id
                    )));
                }
            }
        }
        for conn in &self.event_connections {
            for end in [&conn.publisher, &conn.consumer] {
                if !known(end) {
                    return Err(CcmError::Descriptor(format!(
                        "event-connection `{}` names unknown component `{end}`",
                        conn.id
                    )));
                }
            }
        }
        Ok(())
    }

    /// Instance by id.
    pub fn component(&self, id: &str) -> Option<&ComponentInstance> {
        self.components.iter().find(|c| c.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUPLING: &str = r#"
        <assembly name="coupling">
          <component id="chem" package="chemistry">
            <placement machine="company-x-cluster"/>
            <attribute name="tolerance" type="double" value="0.001"/>
            <attribute name="label" value="run-1"/>
          </component>
          <component id="trans" package="transport">
            <placement node="a0"/>
            <parallel replicas="4"/>
          </component>
          <connection id="c1">
            <provides component="chem" facet="density"/>
            <uses component="trans" receptacle="density"/>
          </connection>
          <event-connection id="e1">
            <publisher component="trans" source="step_done"/>
            <consumer component="chem" sink="steer"/>
          </event-connection>
        </assembly>"#;

    #[test]
    fn parse_full_assembly() {
        let a = Assembly::parse(COUPLING).unwrap();
        assert_eq!(a.name, "coupling");
        assert_eq!(a.components.len(), 2);
        let chem = a.component("chem").unwrap();
        assert_eq!(
            chem.placement,
            Placement::Machine("company-x-cluster".into())
        );
        assert_eq!(chem.replicas, 1);
        assert_eq!(chem.attributes.len(), 2);
        assert_eq!(chem.attributes[0].1, AttrValue::Double(0.001));
        assert_eq!(chem.attributes[1].1, AttrValue::Str("run-1".into()));
        let trans = a.component("trans").unwrap();
        assert_eq!(trans.placement, Placement::Node("a0".into()));
        assert_eq!(trans.replicas, 4);
        assert_eq!(a.connections.len(), 1);
        assert_eq!(a.connections[0].facet, "density");
        assert_eq!(a.event_connections.len(), 1);
        assert_eq!(a.event_connections[0].sink, "steer");
    }

    #[test]
    fn default_placement_is_any() {
        let a = Assembly::parse(
            r#"<assembly name="x"><component id="c" package="p"/></assembly>"#,
        )
        .unwrap();
        assert_eq!(a.component("c").unwrap().placement, Placement::Any);
        assert_eq!(a.component("c").unwrap().replicas, 1);
    }

    #[test]
    fn validation_catches_dangling_references() {
        let bad = r#"
            <assembly name="x">
              <component id="a" package="p"/>
              <connection id="c">
                <provides component="a" facet="f"/>
                <uses component="ghost" receptacle="r"/>
              </connection>
            </assembly>"#;
        let err = Assembly::parse(bad).unwrap_err();
        assert!(matches!(err, CcmError::Descriptor(msg) if msg.contains("ghost")));
    }

    #[test]
    fn validation_catches_duplicate_ids() {
        let bad = r#"
            <assembly name="x">
              <component id="a" package="p"/>
              <component id="a" package="q"/>
            </assembly>"#;
        assert!(matches!(
            Assembly::parse(bad),
            Err(CcmError::Descriptor(msg)) if msg.contains("duplicate")
        ));
    }

    #[test]
    fn malformed_placement_and_replicas_rejected() {
        let both = r#"
            <assembly name="x">
              <component id="a" package="p"><placement node="n" machine="m"/></component>
            </assembly>"#;
        assert!(Assembly::parse(both).is_err());
        let zero = r#"
            <assembly name="x">
              <component id="a" package="p"><parallel replicas="0"/></component>
            </assembly>"#;
        assert!(Assembly::parse(zero).is_err());
    }

    #[test]
    fn missing_required_attrs_rejected() {
        assert!(Assembly::parse(r#"<assembly><component id="a" package="p"/></assembly>"#).is_err());
        assert!(Assembly::parse(r#"<assembly name="x"><component package="p"/></assembly>"#).is_err());
        assert!(Assembly::parse(r#"<assembly name="x"><component id="a"/></assembly>"#).is_err());
        assert!(Assembly::parse("<not-assembly/>").is_err());
    }
}
