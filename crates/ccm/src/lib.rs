//! # padico-ccm
//!
//! A CORBA-Component-Model-style component framework on top of the mini
//! ORB — the substrate GridCCM extends. The paper leans on CCM because it
//! "manages the whole life cycle of a component" (§3.2); this crate
//! implements the pieces that life cycle needs:
//!
//! * [`component`] — the **abstract model**: components with facets,
//!   receptacles (single and multiplex), event sources/sinks and
//!   attributes ([`component::CcmComponent`], [`component::PortRegistry`]);
//! * [`container`] — the **execution model**: containers host component
//!   instances on a node, activate their facets and event sinks on the
//!   ORB, expose the component's equivalent-interface operations
//!   (`provide_facet`, `connect`, `configuration_complete`, …) remotely,
//!   and drive the lifecycle;
//! * [`home`] — component homes (factories), exposed as CORBA objects;
//! * [`package`] — the **deployment model**'s software packages: a flat
//!   `.car` archive (stand-in for CCM's ZIP) holding the OSD-style XML
//!   descriptor and a factory symbol standing in for the binary, plus the
//!   localization constraints of the paper's "company X" scenario;
//! * [`assembly`] — CAD-style assembly descriptors (components,
//!   placements, connections, attribute settings) parsed from XML;
//! * [`naming`] — a minimal naming service used for machine discovery;
//! * [`deploy`] — node daemons and the deployment engine: discover
//!   machines, match placement + localization constraints, instantiate
//!   components through homes, wire connections, broadcast
//!   `configuration_complete`;
//! * [`events`] — the event channel: sources push to subscribed sinks
//!   through oneway invocations.

pub mod assembly;
pub mod component;
pub mod container;
pub mod deploy;
pub mod error;
pub mod events;
pub mod home;
pub mod naming;
pub mod package;

pub use component::{AttrValue, CcmComponent, ComponentContext, ComponentDescriptor, PortDesc, PortKind, PortRegistry};
pub use container::Container;
pub use error::CcmError;
pub use events::Event;
