//! CCM error types.

use padico_orb::OrbError;
use padico_util::xml::ParseError;
use std::fmt;

/// Errors raised by the component framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcmError {
    /// ORB-level failure.
    Orb(OrbError),
    /// Unknown port name or wrong port kind.
    NoSuchPort(String),
    /// Connecting an already-connected simple (non-multiplex) receptacle.
    AlreadyConnected(String),
    /// Component/home/package lookup failure.
    NotFound(String),
    /// Lifecycle violation (e.g. activate before configuration_complete).
    Lifecycle(String),
    /// Descriptor parse/validation failure.
    Descriptor(String),
    /// Deployment failure (no node satisfies constraints, daemon error).
    Deployment(String),
    /// Malformed package archive.
    Package(String),
    /// A CCM error raised by a remote component/daemon and carried back
    /// over the wire.
    Remote(String),
}

impl fmt::Display for CcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcmError::Orb(e) => write!(f, "ORB error: {e}"),
            CcmError::NoSuchPort(p) => write!(f, "no such port: {p}"),
            CcmError::AlreadyConnected(p) => write!(f, "receptacle already connected: {p}"),
            CcmError::NotFound(what) => write!(f, "not found: {what}"),
            CcmError::Lifecycle(what) => write!(f, "lifecycle violation: {what}"),
            CcmError::Descriptor(what) => write!(f, "descriptor error: {what}"),
            CcmError::Deployment(what) => write!(f, "deployment failed: {what}"),
            CcmError::Package(what) => write!(f, "package error: {what}"),
            CcmError::Remote(what) => write!(f, "remote CCM error: {what}"),
        }
    }
}

impl std::error::Error for CcmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CcmError::Orb(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OrbError> for CcmError {
    fn from(e: OrbError) -> Self {
        match CcmError::from_wire(&e) {
            Some(msg) => CcmError::Remote(msg),
            None => CcmError::Orb(e),
        }
    }
}

impl From<ParseError> for CcmError {
    fn from(e: ParseError) -> Self {
        CcmError::Descriptor(e.to_string())
    }
}

/// CCM errors cross the wire as CORBA user exceptions with this repo-id
/// prefix; the message rides after a `#`.
pub const WIRE_EXCEPTION_PREFIX: &str = "IDL:PadicoCCM/Error:1.0#";

impl CcmError {
    /// Encode for transport inside a CORBA user exception id.
    pub fn to_wire(&self) -> OrbError {
        OrbError::User(format!("{WIRE_EXCEPTION_PREFIX}{self}"))
    }

    /// Decode from a CORBA error, when it carries a CCM wire exception.
    pub fn from_wire(e: &OrbError) -> Option<String> {
        match e {
            OrbError::User(id) => id.strip_prefix(WIRE_EXCEPTION_PREFIX).map(str::to_string),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(CcmError::NoSuchPort("density".into())
            .to_string()
            .contains("density"));
        assert!(CcmError::from(OrbError::Marshal("x".into()))
            .to_string()
            .contains("ORB"));
    }

    #[test]
    fn wire_roundtrip() {
        let e = CcmError::AlreadyConnected("porosity".into());
        let wire = e.to_wire();
        let back = CcmError::from_wire(&wire).unwrap();
        assert!(back.contains("porosity"));
        assert!(CcmError::from_wire(&OrbError::Marshal("no".into())).is_none());
    }
}
