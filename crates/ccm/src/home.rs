//! Component homes: CCM's factory/finder objects.
//!
//! A [`Home`] creates component instances of one type. Homes are exposed
//! as CORBA objects so a deployment engine can call `create_component`
//! remotely; the created component's equivalent-interface IOR comes back
//! as the result.

use padico_orb::cdr::{CdrReader, CdrWriter};
use padico_orb::orb::ObjectRef;
use padico_orb::poa::{Servant, ServerCtx};
use padico_orb::{Ior, OrbError};
use std::sync::Arc;

use crate::component::CcmComponent;
use crate::container::Container;
use crate::error::CcmError;

/// A factory for one component type.
pub trait Home: Send + Sync {
    /// Type name of the components produced.
    fn component_type(&self) -> &str;

    /// Create a fresh component instance.
    fn create(&self) -> Result<Arc<dyn CcmComponent>, CcmError>;
}

/// A `Home` built from a closure (convenient for registration).
pub struct FnHome {
    type_name: String,
    factory: Box<dyn Fn() -> Arc<dyn CcmComponent> + Send + Sync>,
}

impl FnHome {
    pub fn new(
        type_name: impl Into<String>,
        factory: impl Fn() -> Arc<dyn CcmComponent> + Send + Sync + 'static,
    ) -> Arc<FnHome> {
        Arc::new(FnHome {
            type_name: type_name.into(),
            factory: Box::new(factory),
        })
    }
}

impl Home for FnHome {
    fn component_type(&self) -> &str {
        &self.type_name
    }

    fn create(&self) -> Result<Arc<dyn CcmComponent>, CcmError> {
        Ok((self.factory)())
    }
}

/// Servant exposing a home over the ORB.
pub struct HomeServant {
    pub container: Arc<Container>,
    pub home: Arc<dyn Home>,
}

impl Servant for HomeServant {
    fn repository_id(&self) -> &str {
        "IDL:PadicoCCM/Home:1.0"
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            "create_component" => {
                let instance_name = args.read_string()?;
                let component = self.home.create().map_err(|e| e.to_wire())?;
                let handle = self
                    .container
                    .install(&instance_name, component)
                    .map_err(|e| e.to_wire())?;
                reply.write_string(&handle.meta_ior().stringify());
                Ok(())
            }
            "component_type" => {
                reply.write_string(self.home.component_type());
                Ok(())
            }
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

/// Install a home on a container, exposing it over the node's ORB.
pub fn install_home(container: &Arc<Container>, home: Arc<dyn Home>) -> Ior {
    container.orb().activate(Arc::new(HomeServant {
        container: Arc::clone(container),
        home,
    }))
}

/// Remote-side client for a home.
#[derive(Clone, Debug)]
pub struct RemoteHome {
    obj: ObjectRef,
}

impl RemoteHome {
    pub fn new(obj: ObjectRef) -> RemoteHome {
        RemoteHome { obj }
    }

    /// Create a component instance and return its equivalent-interface
    /// IOR.
    pub fn create_component(&self, instance_name: &str) -> Result<Ior, CcmError> {
        let mut reply = self
            .obj
            .request("create_component")
            .arg_string(instance_name)
            .invoke()
            .map_err(CcmError::from)?;
        Ok(Ior::destringify(
            &reply.read_string().map_err(CcmError::from)?,
        )?)
    }

    pub fn component_type(&self) -> Result<String, CcmError> {
        let mut reply = self
            .obj
            .request("component_type")
            .invoke()
            .map_err(CcmError::from)?;
        reply.read_string().map_err(CcmError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::tests::{two_containers, FieldComponent};
    use crate::container::RemoteComponent;

    #[test]
    fn remote_home_creates_components() {
        let (c0, c1) = two_containers();
        let home = FnHome::new("Field", || FieldComponent::new(7) as Arc<dyn CcmComponent>);
        let home_ior = install_home(&c0, home);
        let remote_home = RemoteHome::new(c1.orb().object_ref(home_ior));
        assert_eq!(remote_home.component_type().unwrap(), "Field");
        let meta = remote_home.create_component("field-a").unwrap();
        assert!(c0.instance("field-a").is_some());
        // The returned reference is usable.
        let remote = RemoteComponent::new(c1.orb().object_ref(meta));
        assert_eq!(remote.get_descriptor().unwrap().name, "Field");
        // Duplicate instance names surface as remote errors.
        let err = remote_home.create_component("field-a").unwrap_err();
        assert!(matches!(err, CcmError::Remote(_)));
    }
}
