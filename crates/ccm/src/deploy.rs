//! Node daemons and the deployment engine.
//!
//! Every grid node runs a **node daemon** (the paper's "component
//! server"): a CORBA object through which a deployer uploads software
//! packages (binary deployment), queries node properties (machine
//! discovery), and instantiates components. The [`Deployer`] consumes an
//! [`crate::assembly::Assembly`] plus the packages it references and
//! drives the whole CCM deployment dance remotely:
//!
//! 1. discover daemons through the naming service,
//! 2. match each instance's placement constraint *and* its package's
//!    localization constraint against the discovered machines,
//! 3. upload packages and create component instances,
//! 4. set attributes and wire facet/receptacle and event connections,
//! 5. broadcast `configuration_complete`, then `ccm_activate`.
//!
//! Parallel (GridCCM) instances are *placed* here — one replica per node
//! — but their inter-component wiring is done by the GridCCM layer in
//! `padico-core`, which knows about data redistribution.

use bytes::Bytes;
use padico_orb::cdr::{CdrReader, CdrWriter};
use padico_orb::orb::{ObjectRef, Orb};
use padico_orb::poa::{Servant, ServerCtx};
use padico_orb::{Ior, OrbError};
use padico_util::trace_info;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::assembly::{Assembly, Placement};
use crate::container::{Container, RemoteComponent};
use crate::error::CcmError;
use crate::naming::NamingClient;
use crate::package::{FactoryRegistry, Package};

/// Static properties a daemon advertises.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeProps {
    /// Node name (unique), e.g. `"a0"`.
    pub name: String,
    /// Machine/cluster name, e.g. `"cluster-a"`.
    pub machine: String,
    /// Whether the node sits in a trusted zone.
    pub trusted: bool,
}

/// The node daemon servant.
pub struct NodeDaemon {
    container: Arc<Container>,
    props: NodeProps,
    factories: Arc<FactoryRegistry>,
    packages: Mutex<HashMap<String, Package>>,
}

impl NodeDaemon {
    pub fn new(
        container: Arc<Container>,
        props: NodeProps,
        factories: Arc<FactoryRegistry>,
    ) -> Arc<NodeDaemon> {
        Arc::new(NodeDaemon {
            container,
            props,
            factories,
            packages: Mutex::new(HashMap::new()),
        })
    }

    fn install_package(&self, archive: &[u8]) -> Result<(), CcmError> {
        let package = Package::from_archive(archive)?;
        if !package.allows_machine(&self.props.machine) {
            return Err(CcmError::Deployment(format!(
                "package `{}` is not allowed on machine `{}` (localization constraint)",
                package.name, self.props.machine
            )));
        }
        trace_info!(
            "ccm.deploy",
            "{}: installed package `{}` v{}",
            self.props.name,
            package.name,
            package.version
        );
        self.packages.lock().insert(package.name.clone(), package);
        Ok(())
    }

    fn create_component(
        &self,
        package_name: &str,
        instance_name: &str,
    ) -> Result<Ior, CcmError> {
        let factory_symbol = {
            let packages = self.packages.lock();
            packages
                .get(package_name)
                .ok_or_else(|| {
                    CcmError::NotFound(format!(
                        "package `{package_name}` not installed on {}",
                        self.props.name
                    ))
                })?
                .factory_symbol
                .clone()
        };
        let component = self.factories.instantiate(&factory_symbol)?;
        let handle = self.container.install(instance_name, component)?;
        Ok(handle.meta_ior().clone())
    }
}

impl Servant for NodeDaemon {
    fn repository_id(&self) -> &str {
        "IDL:PadicoCCM/NodeDaemon:1.0"
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            "node_info" => {
                reply.write_string(&self.props.name);
                reply.write_string(&self.props.machine);
                reply.write_bool(self.props.trusted);
                Ok(())
            }
            "install_package" => {
                let archive = args.read_octet_seq()?;
                self.install_package(&archive).map_err(|e| e.to_wire())
            }
            "has_package" => {
                let name = args.read_string()?;
                reply.write_bool(self.packages.lock().contains_key(&name));
                Ok(())
            }
            "create_component" => {
                let package_name = args.read_string()?;
                let instance_name = args.read_string()?;
                let ior = self
                    .create_component(&package_name, &instance_name)
                    .map_err(|e| e.to_wire())?;
                reply.write_string(&ior.stringify());
                Ok(())
            }
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

/// Start a node daemon on a container and advertise it in the naming
/// service as `daemon/<node name>`.
pub fn start_daemon(
    container: &Arc<Container>,
    props: NodeProps,
    factories: Arc<FactoryRegistry>,
    naming: &NamingClient,
) -> Result<Ior, CcmError> {
    let name = props.name.clone();
    let daemon = NodeDaemon::new(Arc::clone(container), props, factories);
    let ior = container.orb().activate(daemon);
    naming.rebind(&format!("daemon/{name}"), &ior)?;
    Ok(ior)
}

/// Client handle to a remote node daemon.
#[derive(Clone, Debug)]
pub struct RemoteDaemon {
    obj: ObjectRef,
}

impl RemoteDaemon {
    pub fn new(obj: ObjectRef) -> RemoteDaemon {
        RemoteDaemon { obj }
    }

    pub fn node_info(&self) -> Result<NodeProps, CcmError> {
        let mut reply = self
            .obj
            .request("node_info")
            .invoke()
            .map_err(CcmError::from)?;
        Ok(NodeProps {
            name: reply.read_string().map_err(CcmError::from)?,
            machine: reply.read_string().map_err(CcmError::from)?,
            trusted: reply.read_bool().map_err(CcmError::from)?,
        })
    }

    pub fn install_package(&self, package: &Package) -> Result<(), CcmError> {
        self.obj
            .request("install_package")
            .arg_octet_seq(Bytes::from(package.to_archive()))
            .invoke()
            .map(|_| ())
            .map_err(CcmError::from)
    }

    pub fn has_package(&self, name: &str) -> Result<bool, CcmError> {
        let mut reply = self
            .obj
            .request("has_package")
            .arg_string(name)
            .invoke()
            .map_err(CcmError::from)?;
        reply.read_bool().map_err(CcmError::from)
    }

    /// Create a component and return a client handle to it.
    pub fn create_component(
        &self,
        orb: &Arc<Orb>,
        package: &str,
        instance: &str,
    ) -> Result<RemoteComponent, CcmError> {
        let mut reply = self
            .obj
            .request("create_component")
            .arg_string(package)
            .arg_string(instance)
            .invoke()
            .map_err(CcmError::from)?;
        let ior = Ior::destringify(&reply.read_string().map_err(CcmError::from)?)?;
        Ok(RemoteComponent::new(orb.object_ref(ior)))
    }
}

/// A discovered daemon with its advertised properties.
#[derive(Clone, Debug)]
pub struct DaemonInfo {
    pub props: NodeProps,
    pub daemon: RemoteDaemon,
}

/// One deployed component instance (possibly one replica of several).
#[derive(Clone, Debug)]
pub struct DeployedInstance {
    /// Node name the replica landed on.
    pub node: String,
    pub component: RemoteComponent,
}

/// A deployed assembly.
#[derive(Debug, Default)]
pub struct DeployedApp {
    pub name: String,
    /// Instance id → replicas (length 1 for sequential components).
    pub components: HashMap<String, Vec<DeployedInstance>>,
}

impl DeployedApp {
    /// The single replica of a sequential component.
    pub fn component(&self, id: &str) -> Option<&RemoteComponent> {
        self.components
            .get(id)
            .and_then(|v| v.first())
            .map(|i| &i.component)
    }

    /// All replicas of a component.
    pub fn replicas(&self, id: &str) -> &[DeployedInstance] {
        self.components.get(id).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The deployment engine.
pub struct Deployer {
    orb: Arc<Orb>,
    naming: NamingClient,
}

impl Deployer {
    pub fn new(orb: Arc<Orb>, naming: NamingClient) -> Deployer {
        Deployer { orb, naming }
    }

    pub fn orb(&self) -> &Arc<Orb> {
        &self.orb
    }

    /// Machine discovery: resolve every advertised daemon and fetch its
    /// properties.
    pub fn discover(&self) -> Result<Vec<DaemonInfo>, CcmError> {
        let mut out = Vec::new();
        for name in self.naming.list("daemon/")? {
            let ior = self.naming.resolve(&name)?;
            let daemon = RemoteDaemon::new(self.orb.object_ref(ior));
            let props = daemon.node_info()?;
            out.push(DaemonInfo { props, daemon });
        }
        Ok(out)
    }

    /// Nodes satisfying both the instance placement and the package
    /// localization constraint.
    fn candidates<'a>(
        daemons: &'a [DaemonInfo],
        placement: &Placement,
        package: &Package,
    ) -> Vec<&'a DaemonInfo> {
        daemons
            .iter()
            .filter(|d| match placement {
                Placement::Any => true,
                Placement::Node(n) => &d.props.name == n,
                Placement::Machine(m) => &d.props.machine == m,
            })
            .filter(|d| package.allows_machine(&d.props.machine))
            .collect()
    }

    /// Deploy an assembly. `packages` must contain every package the
    /// assembly references.
    pub fn deploy(
        &self,
        assembly: &Assembly,
        packages: &[Package],
    ) -> Result<DeployedApp, CcmError> {
        assembly.validate()?;
        let daemons = self.discover()?;
        if daemons.is_empty() {
            return Err(CcmError::Deployment("no node daemons discovered".into()));
        }
        let package_of = |name: &str| -> Result<&Package, CcmError> {
            packages
                .iter()
                .find(|p| p.name == name)
                .ok_or_else(|| CcmError::NotFound(format!("package `{name}`")))
        };

        let mut app = DeployedApp {
            name: assembly.name.clone(),
            ..Default::default()
        };
        // Spread load: prefer nodes with fewer instances placed so far.
        let mut load: HashMap<String, usize> = HashMap::new();

        // Place and create.
        for instance in &assembly.components {
            let package = package_of(&instance.package)?;
            let mut candidates = Self::candidates(&daemons, &instance.placement, package);
            candidates.sort_by_key(|d| {
                (
                    load.get(&d.props.name).copied().unwrap_or(0),
                    d.props.name.clone(),
                )
            });
            if candidates.len() < instance.replicas {
                return Err(CcmError::Deployment(format!(
                    "component `{}` needs {} node(s) but only {} satisfy placement {:?} \
                     and the package's localization constraint",
                    instance.id,
                    instance.replicas,
                    candidates.len(),
                    instance.placement
                )));
            }
            let mut replicas = Vec::with_capacity(instance.replicas);
            for (k, daemon_info) in candidates.iter().take(instance.replicas).enumerate() {
                if !daemon_info.daemon.has_package(&package.name)? {
                    daemon_info.daemon.install_package(package)?;
                }
                let instance_name = if instance.replicas == 1 {
                    instance.id.clone()
                } else {
                    format!("{}#{k}", instance.id)
                };
                let component = daemon_info.daemon.create_component(
                    &self.orb,
                    &package.name,
                    &instance_name,
                )?;
                for (attr, value) in &instance.attributes {
                    component.set_attribute(attr, value)?;
                }
                *load.entry(daemon_info.props.name.clone()).or_insert(0) += 1;
                replicas.push(DeployedInstance {
                    node: daemon_info.props.name.clone(),
                    component,
                });
            }
            app.components.insert(instance.id.clone(), replicas);
        }

        // Wire synchronous connections.
        for conn in &assembly.connections {
            let provider_inst = assembly.component(&conn.provider).expect("validated");
            let user_inst = assembly.component(&conn.user).expect("validated");
            if provider_inst.replicas > 1 || user_inst.replicas > 1 {
                return Err(CcmError::Deployment(format!(
                    "connection `{}` touches a parallel component; deploy through the \
                     GridCCM deployer (padico-core) instead",
                    conn.id
                )));
            }
            let provider = app.component(&conn.provider).expect("created above");
            let user = app.component(&conn.user).expect("created above");
            let facet = provider.provide_facet(&conn.facet)?;
            user.connect(&conn.receptacle, &facet)?;
        }

        // Wire event connections.
        for conn in &assembly.event_connections {
            let publisher = app.component(&conn.publisher).expect("created above");
            let consumer = app.component(&conn.consumer).expect("created above");
            let sink = consumer.get_consumer(&conn.sink)?;
            publisher.subscribe(&conn.source, &sink)?;
        }

        // Lifecycle.
        for replicas in app.components.values() {
            for instance in replicas {
                instance.component.configuration_complete()?;
            }
        }
        for replicas in app.components.values() {
            for instance in replicas {
                instance.component.ccm_activate()?;
            }
        }
        trace_info!(
            "ccm.deploy",
            "assembly `{}` deployed: {} component instance group(s)",
            app.name,
            app.components.len()
        );
        Ok(app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::AttrValue;
    use crate::container::tests::FieldComponent;
    use crate::naming::start_naming;
    use padico_fabric::topology::single_cluster;
    use padico_fabric::{SecurityZone, Topology};
    use padico_orb::profile::OrbProfile;
    use padico_tm::runtime::PadicoTM;
    use padico_tm::selector::FabricChoice;

    struct Fixture {
        deployer: Deployer,
        #[allow(dead_code)]
        containers: Vec<Arc<Container>>,
    }

    fn fixture_from(topo: Topology) -> Fixture {
        let topo = Arc::new(topo);
        let tms = PadicoTM::boot_all(Arc::clone(&topo)).unwrap();
        let factories = FactoryRegistry::new();
        factories.register("make_field", || FieldComponent::new(11) as _);
        let mut containers = Vec::new();
        let mut naming_client_for_deployer = None;
        let mut naming_ior = None;
        for (i, tm) in tms.iter().enumerate() {
            let orb = Orb::start(
                Arc::clone(tm),
                "ccm",
                OrbProfile::omniorb3(),
                FabricChoice::Auto,
            )
            .unwrap();
            let container = Container::new(Arc::clone(&orb));
            if i == 0 {
                naming_ior = Some(start_naming(&orb));
            }
            let naming = NamingClient::new(
                orb.object_ref(naming_ior.clone().expect("naming started on node 0")),
            );
            let info = topo.node(tm.node()).unwrap();
            start_daemon(
                &container,
                NodeProps {
                    name: info.name.clone(),
                    machine: info.machine.clone(),
                    trusted: info.zone == SecurityZone::Trusted,
                },
                Arc::clone(&factories),
                &naming,
            )
            .unwrap();
            if i == 0 {
                naming_client_for_deployer = Some(naming);
            }
            containers.push(container);
        }
        let deployer = Deployer::new(
            Arc::clone(containers[0].orb()),
            naming_client_for_deployer.unwrap(),
        );
        Fixture {
            deployer,
            containers,
        }
    }

    fn fixture(nodes: usize) -> Fixture {
        let (topo, _ids) = single_cluster(nodes);
        fixture_from(topo)
    }

    #[test]
    fn discovery_finds_all_daemons() {
        let f = fixture(3);
        let daemons = f.deployer.discover().unwrap();
        assert_eq!(daemons.len(), 3);
        let names: Vec<&str> = daemons.iter().map(|d| d.props.name.as_str()).collect();
        assert_eq!(names, vec!["n0", "n1", "n2"]);
        assert!(daemons.iter().all(|d| d.props.trusted));
    }

    #[test]
    fn full_assembly_deployment() {
        let f = fixture(2);
        let assembly = Assembly::parse(
            r#"<assembly name="pair">
                 <component id="provider" package="field">
                   <placement node="n0"/>
                   <attribute name="scale" type="double" value="2.5"/>
                 </component>
                 <component id="user" package="field">
                   <placement node="n1"/>
                 </component>
                 <connection id="c">
                   <provides component="provider" facet="field"/>
                   <uses component="user" receptacle="input"/>
                 </connection>
                 <event-connection id="e">
                   <publisher component="user" source="tick"/>
                   <consumer component="provider" sink="steer"/>
                 </event-connection>
               </assembly>"#,
        )
        .unwrap();
        let package = Package::new("field", "1.0", "make_field");
        let app = f.deployer.deploy(&assembly, &[package]).unwrap();
        assert_eq!(app.components.len(), 2);
        let provider = app.component("provider").unwrap();
        assert_eq!(
            provider.get_attribute("scale").unwrap(),
            AttrValue::Double(2.5)
        );
        // The user component's receptacle reaches the provider's facet.
        let user = app.component("user").unwrap();
        let desc = user.get_descriptor().unwrap();
        assert_eq!(desc.name, "Field");
        // Verify placement followed the explicit node names.
        assert_eq!(app.replicas("provider")[0].node, "n0");
        assert_eq!(app.replicas("user")[0].node, "n1");
    }

    #[test]
    fn localization_constraint_blocks_wrong_machines() {
        // Two machines; the package is pinned to cluster-b, the placement
        // asks for cluster-a: deployment must fail with a clear error.
        let mut b = Topology::builder();
        let n0 = b.node("a0", "cluster-a", SecurityZone::Trusted);
        let n1 = b.node("b0", "cluster-b", SecurityZone::Trusted);
        b.fabric(padico_fabric::presets::ethernet100(), vec![n0, n1]);
        let f = fixture_from(b.build());

        let assembly = Assembly::parse(
            r#"<assembly name="secret">
                 <component id="chem" package="chemistry">
                   <placement machine="cluster-a"/>
                 </component>
               </assembly>"#,
        )
        .unwrap();
        let package =
            Package::new("chemistry", "1.0", "make_field").restrict_to_machines(&["cluster-b"]);
        let err = f
            .deployer
            .deploy(&assembly, std::slice::from_ref(&package))
            .unwrap_err();
        assert!(
            matches!(&err, CcmError::Deployment(msg) if msg.contains("localization")),
            "{err:?}"
        );

        // Dropping the placement lets the engine honour the constraint.
        let assembly2 = Assembly::parse(
            r#"<assembly name="secret">
                 <component id="chem" package="chemistry"/>
               </assembly>"#,
        )
        .unwrap();
        let app = f.deployer.deploy(&assembly2, &[package]).unwrap();
        assert_eq!(app.replicas("chem")[0].node, "b0");
    }

    #[test]
    fn replica_placement_spreads_over_nodes() {
        let f = fixture(4);
        let assembly = Assembly::parse(
            r#"<assembly name="par">
                 <component id="sim" package="field">
                   <parallel replicas="3"/>
                 </component>
               </assembly>"#,
        )
        .unwrap();
        let package = Package::new("field", "1.0", "make_field");
        let app = f.deployer.deploy(&assembly, &[package]).unwrap();
        let nodes: Vec<&str> = app
            .replicas("sim")
            .iter()
            .map(|r| r.node.as_str())
            .collect();
        assert_eq!(nodes, vec!["n0", "n1", "n2"]);
    }

    #[test]
    fn too_few_nodes_for_replicas_fails() {
        let f = fixture(2);
        let assembly = Assembly::parse(
            r#"<assembly name="par">
                 <component id="sim" package="field">
                   <parallel replicas="3"/>
                 </component>
               </assembly>"#,
        )
        .unwrap();
        let package = Package::new("field", "1.0", "make_field");
        let err = f.deployer.deploy(&assembly, &[package]).unwrap_err();
        assert!(matches!(err, CcmError::Deployment(_)));
    }

    #[test]
    fn wiring_parallel_components_is_deferred_to_gridccm() {
        let f = fixture(3);
        let assembly = Assembly::parse(
            r#"<assembly name="par">
                 <component id="sim" package="field">
                   <parallel replicas="2"/>
                 </component>
                 <component id="vis" package="field"/>
                 <connection id="c">
                   <provides component="sim" facet="field"/>
                   <uses component="vis" receptacle="input"/>
                 </connection>
               </assembly>"#,
        )
        .unwrap();
        let package = Package::new("field", "1.0", "make_field");
        let err = f.deployer.deploy(&assembly, &[package]).unwrap_err();
        assert!(
            matches!(&err, CcmError::Deployment(msg) if msg.contains("GridCCM")),
            "{err:?}"
        );
    }

    #[test]
    fn missing_package_is_reported() {
        let f = fixture(1);
        let assembly = Assembly::parse(
            r#"<assembly name="x"><component id="a" package="ghost"/></assembly>"#,
        )
        .unwrap();
        assert!(matches!(
            f.deployer.deploy(&assembly, &[]),
            Err(CcmError::NotFound(_))
        ));
    }
}
