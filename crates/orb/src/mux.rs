//! Completion-driven request multiplexer: one per (node, peer endpoint).
//!
//! The [`RequestMux`] owns everything one pooled client connection needs
//! to pipeline invocations: the VLink stream, the write lock, the
//! pending-reply table, and request-id allocation. GIOP and ESIOP share
//! it — frames are auto-detected per message by [`decode_any`], the same
//! routine the server loop uses, so there is exactly one decode/routing
//! path in the ORB.
//!
//! The API is two-phase: [`RequestMux::submit`] registers interest and
//! writes the frame, returning a [`ReplyHandle`]; [`ReplyHandle::wait`]
//! blocks until the routed reply lands (or the deadline passes, which
//! sends a best-effort `CancelRequest` chasing the abandoned id). N
//! outstanding requests therefore cost N table entries, not N blocked
//! threads, and replies may return in any order — the table routes each
//! one to its handle by request id.
//!
//! Completion delivery depends on the progress engine:
//!
//! * `Threaded` — a dedicated reader thread pumps `read_frame` and
//!   completes slots;
//! * `EventLoop` — the stream goes reactive ([`VLinkStream::on_frames`])
//!   and replies complete inline on the scheduler worker that delivers
//!   the frame: no reader thread exists at all.
//!
//! A handle dropped without being consumed deregisters its pending entry
//! (see [`ReplyHandle`]'s `Drop`), so a reply racing a cancel — or a
//! caller abandoning a submitted request on an error path — can never
//! leak a table slot.

use padico_fabric::Payload;
use padico_tm::runtime::EngineKind;
use padico_tm::vlink::VLinkStream;
use padico_tm::TmError;
use padico_util::metrics::counter_add;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::{classify_transport, OrbError};
use crate::giop::{self, GiopMessage};
use crate::orb::WireProtocol;

/// Decode one inbound frame, auto-detecting its wire protocol from the
/// first byte. Both the client reply path and the server request loop
/// route through here — mixed-protocol grids work because detection is
/// per frame, not per connection.
pub fn decode_any(frame: &Payload) -> (WireProtocol, Result<GiopMessage, OrbError>) {
    let first = frame.segments().next().and_then(|s| s.first().copied());
    if first.is_some_and(crate::esiop::is_esiop) {
        (WireProtocol::Esiop, crate::esiop::decode(frame))
    } else {
        (WireProtocol::Giop, giop::decode(frame))
    }
}

/// Completion state of one outstanding request.
enum SlotState {
    /// No reply yet.
    Waiting,
    /// The routed reply, parked until the handle collects it.
    Ready(GiopMessage),
    /// The connection died before a reply arrived.
    Dead,
}

/// One outstanding request's completion slot. The waiter blocks on the
/// condvar (Threaded) or is simply gone by the time the event-loop
/// completes the slot inline; either way `complete`/`kill` publish the
/// terminal state exactly once.
struct ReplySlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<ReplySlot> {
        Arc::new(ReplySlot {
            state: Mutex::new(SlotState::Waiting),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, msg: GiopMessage) {
        *self.state.lock() = SlotState::Ready(msg);
        self.cv.notify_all();
    }

    fn kill(&self) {
        let mut st = self.state.lock();
        if matches!(*st, SlotState::Waiting) {
            *st = SlotState::Dead;
            self.cv.notify_all();
        }
    }
}

/// Per-(node, peer) request multiplexer over one pooled VLink connection.
pub struct RequestMux {
    stream: Arc<VLinkStream>,
    /// Serializes frame *writes* only; reads belong to the pump.
    write_lock: Mutex<()>,
    /// Outstanding requests awaiting their reply, keyed by request id.
    pending: Mutex<HashMap<u32, Arc<ReplySlot>>>,
    /// Request-id allocator for this connection. Ids are per-mux (the
    /// wire only requires uniqueness among the connection's outstanding
    /// requests), which keeps allocation contention off the hot path.
    next_id: AtomicU32,
}

impl RequestMux {
    /// Wrap `stream` in a mux and start its completion pump for the
    /// given progress engine.
    pub fn establish(
        stream: Arc<VLinkStream>,
        engine: EngineKind,
        reader_name: String,
    ) -> Result<Arc<RequestMux>, OrbError> {
        let mux = Arc::new(RequestMux {
            stream: Arc::clone(&stream),
            write_lock: Mutex::new(()),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU32::new(1),
        });
        match engine {
            EngineKind::Threaded => spawn_pump(&mux, reader_name)?,
            EngineKind::EventLoop => {
                // Replies complete as scheduler events: the frame's
                // delivery event runs `on_frame` inline, no thread.
                let pump = Arc::clone(&mux);
                if stream
                    .on_frames(Arc::new(move |frame| {
                        pump.on_frame(frame);
                    }))
                    .is_err()
                {
                    // A stream that cannot go reactive (already consumed
                    // queued frames reactively, exotic fabric) still
                    // multiplexes fine behind a pump thread.
                    spawn_pump(&mux, reader_name)?;
                }
            }
        }
        Ok(mux)
    }

    /// Allocate a fresh request id.
    pub fn next_request_id(&self) -> u32 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Outstanding (un-replied) requests.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Register interest in `request_id` (when a reply is expected), then
    /// send the frame. Returns the handle the caller waits on, or `None`
    /// for oneways.
    pub fn submit(
        self: &Arc<Self>,
        request_id: u32,
        frame: Payload,
        expect_reply: bool,
    ) -> Result<Option<ReplyHandle>, OrbError> {
        let slot = if expect_reply {
            let slot = ReplySlot::new();
            self.pending.lock().insert(request_id, Arc::clone(&slot));
            Some(slot)
        } else {
            None
        };
        let _w = self.write_lock.lock();
        // Reply completions ride the pump, not a recv on this core —
        // flush so a coalesced request cannot sit queued.
        if let Err(e) = self
            .stream
            .write_payload(frame)
            .and_then(|()| self.stream.flush())
        {
            if expect_reply {
                self.pending.lock().remove(&request_id);
            }
            return Err(e.into());
        }
        Ok(slot.map(|slot| ReplyHandle {
            mux: Arc::clone(self),
            request_id,
            slot,
            consumed: false,
        }))
    }

    /// Best-effort GIOP `CancelRequest` chasing an abandoned request —
    /// always GIOP-framed, since servers auto-detect per frame.
    fn send_cancel(&self, request_id: u32) {
        let _w = self.write_lock.lock();
        let _ = self
            .stream
            .write_payload(giop::encode_cancel(request_id))
            .and_then(|()| self.stream.flush());
    }

    /// Route one inbound frame (or EOF, as `None`). Returns `false` when
    /// the connection is finished and the pump should stop.
    fn on_frame(&self, frame: Option<Payload>) -> bool {
        let Some(frame) = frame else {
            self.fail_all();
            return false;
        };
        let msg = match decode_any(&frame).1 {
            Ok(msg) => msg,
            Err(_) => return true,
        };
        let request_id = match &msg {
            GiopMessage::Reply { request_id, .. }
            | GiopMessage::LocateReply { request_id, .. } => *request_id,
            GiopMessage::CloseConnection => {
                self.fail_all();
                return false;
            }
            // Server-role traffic and stray cancels are not ours to
            // answer on a client connection.
            _ => return true,
        };
        // A reply to an id no longer pending (the waiter timed out and
        // deregistered, or its handle was dropped) is simply discarded.
        let slot = self.pending.lock().remove(&request_id);
        if let Some(slot) = slot {
            slot.complete(msg);
        }
        true
    }

    /// Connection is gone: wake every waiter with an error.
    fn fail_all(&self) {
        let drained: Vec<Arc<ReplySlot>> =
            self.pending.lock().drain().map(|(_, slot)| slot).collect();
        for slot in drained {
            slot.kill();
        }
    }
}

/// Dedicated reader thread for `Threaded` engines (and the reactive
/// fallback): pumps `read_frame` into `on_frame` until the connection
/// finishes.
fn spawn_pump(mux: &Arc<RequestMux>, reader_name: String) -> Result<(), OrbError> {
    let pump = Arc::clone(mux);
    std::thread::Builder::new()
        .name(reader_name)
        .spawn(move || loop {
            match pump.stream.read_frame() {
                Ok(Some(frame)) => {
                    if !pump.on_frame(Some(frame)) {
                        return;
                    }
                }
                Ok(None) | Err(_) => {
                    pump.on_frame(None);
                    return;
                }
            }
        })
        .map_err(|e| OrbError::System(format!("spawn mux pump: {e}")))?;
    Ok(())
}

/// Handle to one submitted request's future reply.
///
/// Dropping an unconsumed handle deregisters its pending entry, so an
/// abandoned request (caller error path, reply racing a cancel) cannot
/// leak a table slot; a straggler reply to the stale id is discarded by
/// the pump.
pub struct ReplyHandle {
    mux: Arc<RequestMux>,
    request_id: u32,
    slot: Arc<ReplySlot>,
    consumed: bool,
}

impl ReplyHandle {
    /// The request id this handle waits on.
    pub fn request_id(&self) -> u32 {
        self.request_id
    }

    /// Block until the routed reply for this request lands, for at most
    /// `deadline`.
    ///
    /// A lost reply (the request or the reply frame was dropped on the
    /// wire) surfaces as `TRANSIENT` after the deadline instead of
    /// blocking the caller forever; the pending entry is removed so a
    /// straggler reply to the stale id is simply discarded by the pump.
    /// A best-effort GIOP `CancelRequest` chases the abandoned request so
    /// a server still working on it can suppress the (now unwanted)
    /// reply.
    pub fn wait(mut self, deadline: Duration) -> Result<GiopMessage, OrbError> {
        let start = std::time::Instant::now();
        let slot = Arc::clone(&self.slot);
        let mut st = slot.state.lock();
        loop {
            match std::mem::replace(&mut *st, SlotState::Waiting) {
                SlotState::Ready(msg) => {
                    // The pump removed the pending entry when it
                    // completed the slot; nothing left to deregister.
                    self.consumed = true;
                    return Ok(msg);
                }
                SlotState::Dead => {
                    *st = SlotState::Dead;
                    drop(st);
                    self.consumed = true;
                    self.mux.pending.lock().remove(&self.request_id);
                    return Err(OrbError::CommFailure(TmError::Closed));
                }
                SlotState::Waiting => {}
            }
            let Some(remaining) = deadline.checked_sub(start.elapsed()) else {
                drop(st);
                self.consumed = true;
                self.mux.pending.lock().remove(&self.request_id);
                counter_add("orb.cancel.sent", 1);
                self.mux.send_cancel(self.request_id);
                return Err(classify_transport(TmError::Timeout(format!(
                    "GIOP reply to request {}",
                    self.request_id
                ))));
            };
            slot.cv.wait_for(&mut st, remaining);
        }
    }
}

impl Drop for ReplyHandle {
    fn drop(&mut self) {
        if !self.consumed {
            self.mux.pending.lock().remove(&self.request_id);
        }
    }
}

/// Grow-on-demand dispatch workers for the server side of the serving
/// path: the mirror image of the pending-reply table. A pipelined client
/// can put thousands of requests behind one connection; dispatching each
/// on a fresh OS thread makes the server's thread count track the
/// backlog. The pool instead reuses an idle worker when one exists,
/// spawns while under its cap, and queues beyond it — the thread count
/// tracks *concurrent* dispatches, bounded, not submitted requests.
///
/// The cap cannot deadlock nested invocations: an inner call back into
/// this node rides the caller's own client mux, which arrives on a
/// *different* inbound connection with its own pool — never behind the
/// outer dispatch in this queue.
pub(crate) struct DispatchPool {
    inner: Arc<PoolInner>,
    name: String,
    cap: usize,
}

struct PoolInner {
    state: Mutex<PoolState>,
    cv: Condvar,
}

struct PoolState {
    jobs: std::collections::VecDeque<Box<dyn FnOnce() + Send>>,
    idle: usize,
    spawned: usize,
    closed: bool,
}

impl DispatchPool {
    /// An empty pool; workers appear on demand up to `cap`. `name`
    /// prefixes the worker thread names.
    pub fn new(name: String, cap: usize) -> DispatchPool {
        DispatchPool {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState {
                    jobs: std::collections::VecDeque::new(),
                    idle: 0,
                    spawned: 0,
                    closed: false,
                }),
                cv: Condvar::new(),
            }),
            name,
            cap: cap.max(1),
        }
    }

    /// Run `job` on an idle worker, a freshly spawned one while under
    /// the cap, or leave it queued for the next worker to free up. Never
    /// blocks the caller.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut st = self.inner.state.lock();
        st.jobs.push_back(Box::new(job));
        // Spawn on *backlog*, not on `idle == 0`: a woken worker only
        // leaves the idle count after it reacquires this lock, so
        // consecutive submits would each see the same idle worker,
        // collapse their wakeups onto it, and strand the surplus jobs
        // until some later submit. Backlog beyond the parked workers
        // always gets a thread of its own (while under the cap).
        if st.jobs.len() <= st.idle || st.spawned >= self.cap {
            self.inner.cv.notify_one();
            return;
        }
        st.spawned += 1;
        let worker = format!("{}-{}", self.name, st.spawned);
        drop(st);
        let inner = Arc::clone(&self.inner);
        // Spawn failure (resource exhaustion) leaves the job queued for
        // the surviving workers rather than losing it.
        let _ = std::thread::Builder::new().name(worker).spawn(move || {
            let mut st = inner.state.lock();
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    drop(st);
                    job();
                    st = inner.state.lock();
                    continue;
                }
                if st.closed {
                    return;
                }
                st.idle += 1;
                inner.cv.wait(&mut st);
                st.idle -= 1;
            }
        });
    }
}

impl Drop for DispatchPool {
    fn drop(&mut self) {
        // Workers drain the remaining queue, then exit.
        self.inner.state.lock().closed = true;
        self.inner.cv.notify_all();
    }
}
