//! Interoperable Object References.
//!
//! An [`Ior`] names a CORBA object: the repository id of its interface
//! plus a profile saying where it lives — grid node, ORB endpoint service
//! name, and the object key the POA assigned. The stringified `IOR:<hex>`
//! form is what deployment descriptors and naming exchanges carry, exactly
//! as real CORBA tooling passes object references around as opaque
//! strings.

use bytes::Bytes;
use padico_util::ids::NodeId;
use std::fmt;

use crate::cdr::{CdrReader, CdrWriter};
use crate::error::OrbError;
use crate::profile::MarshalStrategy;

/// Key identifying one activated object within its POA.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ObjectKey(pub u64);

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key{}", self.0)
    }
}

/// An object reference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ior {
    /// Interface repository id, e.g. `"IDL:Coupling/Density:1.0"`.
    pub type_id: String,
    /// Grid node hosting the object.
    pub node: NodeId,
    /// VLink service name of the hosting ORB's endpoint.
    pub endpoint: String,
    /// POA object key.
    pub key: ObjectKey,
}

impl Ior {
    /// Encode to the stringified `IOR:<hex>` form.
    pub fn stringify(&self) -> String {
        let mut w = CdrWriter::new(MarshalStrategy::Copying);
        w.write_string(&self.type_id);
        w.write_u32(self.node.0);
        w.write_string(&self.endpoint);
        w.write_u64(self.key.0);
        let bytes = w.finish().to_vec();
        let mut s = String::with_capacity(4 + bytes.len() * 2);
        s.push_str("IOR:");
        for b in bytes {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Decode from the stringified form.
    pub fn destringify(s: &str) -> Result<Ior, OrbError> {
        let hex = s
            .strip_prefix("IOR:")
            .ok_or_else(|| OrbError::BadIor("missing IOR: prefix".into()))?;
        if hex.len() % 2 != 0 {
            return Err(OrbError::BadIor("odd hex length".into()));
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for i in (0..hex.len()).step_by(2) {
            let byte = u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|_| OrbError::BadIor(format!("bad hex at {i}")))?;
            bytes.push(byte);
        }
        let mut r = CdrReader::from_bytes(Bytes::from(bytes));
        let type_id = r.read_string()?;
        let node = NodeId(r.read_u32()?);
        let endpoint = r.read_string()?;
        let key = ObjectKey(r.read_u64()?);
        Ok(Ior {
            type_id,
            node,
            endpoint,
            key,
        })
    }
}

impl fmt::Display for Ior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @{}:{} ({})",
            self.type_id, self.node, self.endpoint, self.key
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ior {
        Ior {
            type_id: "IDL:Coupling/Density:1.0".into(),
            node: NodeId(3),
            endpoint: "giop:orb0".into(),
            key: ObjectKey(0xdead_beef_0001),
        }
    }

    #[test]
    fn stringify_roundtrip() {
        let ior = sample();
        let s = ior.stringify();
        assert!(s.starts_with("IOR:"));
        assert!(s[4..].chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(Ior::destringify(&s).unwrap(), ior);
    }

    #[test]
    fn destringify_rejects_garbage() {
        assert!(matches!(
            Ior::destringify("not-an-ior"),
            Err(OrbError::BadIor(_))
        ));
        assert!(matches!(
            Ior::destringify("IOR:zz"),
            Err(OrbError::BadIor(_))
        ));
        assert!(matches!(
            Ior::destringify("IOR:abc"),
            Err(OrbError::BadIor(_))
        ));
        // Valid hex but truncated CDR.
        assert!(Ior::destringify("IOR:0102").is_err());
    }

    #[test]
    fn display_is_readable() {
        let text = sample().to_string();
        assert!(text.contains("Density") && text.contains("node3"), "{text}");
    }
}
