//! GIOP-style wire protocol.
//!
//! Each message is one VLink frame: a 12-byte header (`"GIOP"`, version,
//! flags, message type, body size) followed by a CDR body. The message
//! types of GIOP 1.2 that a working ORB needs are implemented; Fragment is
//! omitted because VLink frames are unbounded (noted divergence).

use bytes::Bytes;
use padico_fabric::Payload;

use crate::cdr::{CdrReader, CdrWriter};
use crate::error::OrbError;
use crate::ior::ObjectKey;
use crate::profile::MarshalStrategy;

/// GIOP magic bytes.
pub const MAGIC: &[u8; 4] = b"GIOP";
/// Protocol version encoded in headers (GIOP 1.2).
pub const VERSION: (u8, u8) = (1, 2);
/// Flags byte: bit 0 set = little-endian.
pub const FLAG_LITTLE_ENDIAN: u8 = 0x01;

/// GIOP message types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgType {
    Request = 0,
    Reply = 1,
    CancelRequest = 2,
    LocateRequest = 3,
    LocateReply = 4,
    CloseConnection = 5,
    MessageError = 6,
}

impl MsgType {
    fn from_u8(v: u8) -> Result<MsgType, OrbError> {
        Ok(match v {
            0 => MsgType::Request,
            1 => MsgType::Reply,
            2 => MsgType::CancelRequest,
            3 => MsgType::LocateRequest,
            4 => MsgType::LocateReply,
            5 => MsgType::CloseConnection,
            6 => MsgType::MessageError,
            other => return Err(OrbError::Marshal(format!("unknown GIOP type {other}"))),
        })
    }
}

/// Reply status codes (subset of GIOP's ReplyStatusType, plus two
/// overload-protection statuses this ORB adds beyond GIOP 1.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplyStatus {
    NoException = 0,
    UserException = 1,
    SystemException = 2,
    /// The server load-shed the request before dispatch (admission
    /// budget exhausted). The client classifies it retryable.
    Transient = 3,
    /// The request's propagated deadline had already expired when the
    /// server looked at it; dispatch was short-circuited. NOT retryable:
    /// the budget is gone, retrying cannot beat an expired deadline.
    DeadlineExceeded = 4,
}

impl ReplyStatus {
    fn from_u32(v: u32) -> Result<ReplyStatus, OrbError> {
        Ok(match v {
            0 => ReplyStatus::NoException,
            1 => ReplyStatus::UserException,
            2 => ReplyStatus::SystemException,
            3 => ReplyStatus::Transient,
            4 => ReplyStatus::DeadlineExceeded,
            other => return Err(OrbError::Marshal(format!("unknown reply status {other}"))),
        })
    }
}

/// Locate status codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocateStatus {
    UnknownObject = 0,
    ObjectHere = 1,
}

/// One decoded GIOP message.
#[derive(Debug)]
pub enum GiopMessage {
    Request {
        request_id: u32,
        response_expected: bool,
        object_key: ObjectKey,
        operation: String,
        /// Trace id of the caller's span tree (service context); 0 when
        /// the caller is not traced.
        trace_id: u64,
        /// Span id of the caller's in-flight request span; 0 when untraced.
        parent_span: u64,
        /// Absolute virtual-time deadline of the whole invocation
        /// (service context); 0 when the caller propagates none. The
        /// server checks remaining budget against its own clock before
        /// dispatching.
        deadline: u64,
        /// CDR-encoded arguments, still the sender's gather list.
        body: Payload,
    },
    Reply {
        request_id: u32,
        status: ReplyStatus,
        /// CDR-encoded results or exception, still the sender's gather list.
        body: Payload,
    },
    CancelRequest {
        request_id: u32,
    },
    LocateRequest {
        request_id: u32,
        object_key: ObjectKey,
    },
    LocateReply {
        request_id: u32,
        status: LocateStatus,
    },
    CloseConnection,
    MessageError,
}

fn header(msg_type: MsgType, body_len: usize) -> Bytes {
    let mut h = Vec::with_capacity(12);
    h.extend_from_slice(MAGIC);
    h.push(VERSION.0);
    h.push(VERSION.1);
    h.push(FLAG_LITTLE_ENDIAN);
    h.push(msg_type as u8);
    h.extend_from_slice(&(body_len as u32).to_le_bytes());
    Bytes::from(h)
}

/// Frame a Request. `args` is the already-CDR-encoded argument payload —
/// appended as segments, so a zero-copy marshaller's splices survive all
/// the way to the fabric. `trace_id`/`parent_span` carry the caller's
/// span context (the GIOP service-context equivalent); pass 0/0 for an
/// untraced request. `deadline` is the invocation's absolute virtual-time
/// deadline (0 = none).
#[allow(clippy::too_many_arguments)]
pub fn encode_request(
    request_id: u32,
    response_expected: bool,
    object_key: ObjectKey,
    operation: &str,
    trace_id: u64,
    parent_span: u64,
    deadline: u64,
    args: Payload,
) -> Payload {
    let mut head = CdrWriter::new(MarshalStrategy::Copying);
    head.write_u32(request_id);
    head.write_bool(response_expected);
    head.write_u64(object_key.0);
    head.write_string(operation);
    head.write_u64(trace_id);
    head.write_u64(parent_span);
    head.write_u64(deadline);
    // Align the body start to 8 so argument encoding is self-consistent
    // regardless of the operation-name length.
    head.write_u64(args.len() as u64);
    let head_payload = head.finish();

    let mut out = Payload::new();
    out.push_segment(header(MsgType::Request, head_payload.len() + args.len()));
    out.append(head_payload);
    out.append(args);
    out
}

/// Frame a Reply.
pub fn encode_reply(request_id: u32, status: ReplyStatus, body: Payload) -> Payload {
    let mut head = CdrWriter::new(MarshalStrategy::Copying);
    head.write_u32(request_id);
    head.write_u32(status as u32);
    head.write_u64(body.len() as u64);
    let head_payload = head.finish();
    let mut out = Payload::new();
    out.push_segment(header(MsgType::Reply, head_payload.len() + body.len()));
    out.append(head_payload);
    out.append(body);
    out
}

/// Frame a LocateRequest.
pub fn encode_locate_request(request_id: u32, object_key: ObjectKey) -> Payload {
    let mut head = CdrWriter::new(MarshalStrategy::Copying);
    head.write_u32(request_id);
    head.write_u64(object_key.0);
    let head_payload = head.finish();
    let mut out = Payload::new();
    out.push_segment(header(MsgType::LocateRequest, head_payload.len()));
    out.append(head_payload);
    out
}

/// Frame a LocateReply.
pub fn encode_locate_reply(request_id: u32, status: LocateStatus) -> Payload {
    let mut head = CdrWriter::new(MarshalStrategy::Copying);
    head.write_u32(request_id);
    head.write_u32(status as u32);
    let head_payload = head.finish();
    let mut out = Payload::new();
    out.push_segment(header(MsgType::LocateReply, head_payload.len()));
    out.append(head_payload);
    out
}

/// Frame a CancelRequest.
pub fn encode_cancel(request_id: u32) -> Payload {
    let mut head = CdrWriter::new(MarshalStrategy::Copying);
    head.write_u32(request_id);
    let head_payload = head.finish();
    let mut out = Payload::new();
    out.push_segment(header(MsgType::CancelRequest, head_payload.len()));
    out.append(head_payload);
    out
}

/// Frame a CloseConnection.
pub fn encode_close() -> Payload {
    Payload::from_bytes(header(MsgType::CloseConnection, 0))
}

/// Frame a MessageError.
pub fn encode_message_error() -> Payload {
    Payload::from_bytes(header(MsgType::MessageError, 0))
}

/// Decode one framed message.
///
/// Splits the frame along its gather list: the 12-byte header (its own
/// segment on the encode side, so this is free), then the CDR head
/// fields, then the argument/result body — which stays the sender's
/// segments untouched.
pub fn decode(frame: &Payload) -> Result<GiopMessage, OrbError> {
    if frame.len() < 12 {
        return Err(OrbError::Marshal("GIOP frame shorter than header".into()));
    }
    let (head, rest) = frame.split_at(12);
    let whole = head.to_contiguous();
    if &whole[0..4] != MAGIC {
        return Err(OrbError::Marshal("bad GIOP magic".into()));
    }
    if whole[4] != VERSION.0 {
        return Err(OrbError::Marshal(format!(
            "unsupported GIOP major version {}",
            whole[4]
        )));
    }
    if whole[6] & FLAG_LITTLE_ENDIAN == 0 {
        return Err(OrbError::Marshal(
            "big-endian GIOP not supported by this ORB".into(),
        ));
    }
    let msg_type = MsgType::from_u8(whole[7])?;
    let body_len = u32::from_le_bytes(whole[8..12].try_into().expect("4")) as usize;
    if rest.len() != body_len {
        return Err(OrbError::Marshal(format!(
            "GIOP size mismatch: header says {body_len}, frame has {}",
            rest.len()
        )));
    }
    let mut r = CdrReader::new(&rest);
    match msg_type {
        MsgType::Request => {
            let request_id = r.read_u32()?;
            let response_expected = r.read_bool()?;
            let object_key = ObjectKey(r.read_u64()?);
            let operation = r.read_string()?;
            let trace_id = r.read_u64()?;
            let parent_span = r.read_u64()?;
            let deadline = r.read_u64()?;
            let args_len = r.read_u64()? as usize;
            let consumed = rest.len() - r.remaining();
            if r.remaining() != args_len {
                return Err(OrbError::Marshal(format!(
                    "request args length mismatch: declared {args_len}, have {}",
                    r.remaining()
                )));
            }
            Ok(GiopMessage::Request {
                request_id,
                response_expected,
                object_key,
                operation,
                trace_id,
                parent_span,
                deadline,
                body: rest.split_at(consumed).1,
            })
        }
        MsgType::Reply => {
            let request_id = r.read_u32()?;
            let status = ReplyStatus::from_u32(r.read_u32()?)?;
            let body_len = r.read_u64()? as usize;
            let consumed = rest.len() - r.remaining();
            if r.remaining() != body_len {
                return Err(OrbError::Marshal("reply body length mismatch".into()));
            }
            Ok(GiopMessage::Reply {
                request_id,
                status,
                body: rest.split_at(consumed).1,
            })
        }
        MsgType::CancelRequest => Ok(GiopMessage::CancelRequest {
            request_id: r.read_u32()?,
        }),
        MsgType::LocateRequest => Ok(GiopMessage::LocateRequest {
            request_id: r.read_u32()?,
            object_key: ObjectKey(r.read_u64()?),
        }),
        MsgType::LocateReply => {
            let request_id = r.read_u32()?;
            let status = match r.read_u32()? {
                0 => LocateStatus::UnknownObject,
                1 => LocateStatus::ObjectHere,
                other => {
                    return Err(OrbError::Marshal(format!("unknown locate status {other}")))
                }
            };
            Ok(GiopMessage::LocateReply { request_id, status })
        }
        MsgType::CloseConnection => Ok(GiopMessage::CloseConnection),
        MsgType::MessageError => Ok(GiopMessage::MessageError),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_preserves_zero_copy_args() {
        let blob = Bytes::from(vec![3u8; 4096]);
        let blob_ptr = blob.as_ptr();
        let mut args = CdrWriter::new(MarshalStrategy::ZeroCopy);
        args.write_octet_seq(blob);
        let frame = encode_request(
            42,
            true,
            ObjectKey(7),
            "compute_density",
            0xfeed,
            0xbeef,
            0xdead_1111,
            args.finish(),
        );
        assert!(frame.segment_count() > 1, "splice survives framing");
        match decode(&frame).unwrap() {
            GiopMessage::Request {
                request_id,
                response_expected,
                object_key,
                operation,
                trace_id,
                parent_span,
                deadline,
                body,
            } => {
                assert_eq!(request_id, 42);
                assert!(response_expected);
                assert_eq!(object_key, ObjectKey(7));
                assert_eq!(operation, "compute_density");
                assert_eq!(trace_id, 0xfeed);
                assert_eq!(parent_span, 0xbeef);
                assert_eq!(deadline, 0xdead_1111);
                let mut r = CdrReader::new(&body);
                let seq = r.read_octet_seq().unwrap();
                assert_eq!(seq, Bytes::from(vec![3u8; 4096]));
                assert_eq!(
                    seq.as_ptr(),
                    blob_ptr,
                    "decoded args must alias the caller's splice"
                );
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn reply_roundtrip_all_statuses() {
        for status in [
            ReplyStatus::NoException,
            ReplyStatus::UserException,
            ReplyStatus::SystemException,
            ReplyStatus::Transient,
            ReplyStatus::DeadlineExceeded,
        ] {
            let mut body = CdrWriter::new(MarshalStrategy::Copying);
            body.write_i32(-5);
            let frame = encode_reply(9, status, body.finish());
            match decode(&frame).unwrap() {
                GiopMessage::Reply {
                    request_id,
                    status: got,
                    body,
                } => {
                    assert_eq!(request_id, 9);
                    assert_eq!(got, status);
                    let mut r = CdrReader::new(&body);
                    assert_eq!(r.read_i32().unwrap(), -5);
                }
                other => panic!("wrong message: {other:?}"),
            }
        }
    }

    #[test]
    fn locate_and_control_messages() {
        match decode(&encode_locate_request(1, ObjectKey(88))).unwrap() {
            GiopMessage::LocateRequest {
                request_id,
                object_key,
            } => {
                assert_eq!((request_id, object_key), (1, ObjectKey(88)));
            }
            other => panic!("{other:?}"),
        }
        match decode(&encode_locate_reply(1, LocateStatus::ObjectHere)).unwrap() {
            GiopMessage::LocateReply { status, .. } => {
                assert_eq!(status, LocateStatus::ObjectHere)
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            decode(&encode_cancel(33)).unwrap(),
            GiopMessage::CancelRequest { request_id: 33 }
        ));
        assert!(matches!(
            decode(&encode_close()).unwrap(),
            GiopMessage::CloseConnection
        ));
        assert!(matches!(
            decode(&encode_message_error()).unwrap(),
            GiopMessage::MessageError
        ));
    }

    #[test]
    fn malformed_frames_rejected() {
        // Too short.
        assert!(decode(&Payload::from_vec(vec![1, 2, 3])).is_err());
        // Bad magic.
        let mut bad = encode_close().to_vec();
        bad[0] = b'X';
        assert!(decode(&Payload::from_vec(bad)).is_err());
        // Size mismatch.
        let mut truncated = encode_cancel(1).to_vec();
        truncated.pop();
        assert!(decode(&Payload::from_vec(truncated)).is_err());
        // Big-endian flag.
        let mut be = encode_close().to_vec();
        be[6] = 0;
        assert!(decode(&Payload::from_vec(be)).is_err());
        // Unknown message type.
        let mut unk = encode_close().to_vec();
        unk[7] = 99;
        assert!(decode(&Payload::from_vec(unk)).is_err());
    }
}
