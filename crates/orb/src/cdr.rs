//! CDR (Common Data Representation) marshalling.
//!
//! CDR aligns every primitive to its natural size *relative to the start
//! of the encapsulation*. The writer tracks a global offset so alignment
//! stays correct even when large octet sequences are spliced in as
//! zero-copy segments.
//!
//! Two strategies (selected by the ORB profile):
//!
//! * [`MarshalStrategy::Copying`] — everything, including bulk octet
//!   sequences, is copied into one contiguous buffer. This is what Mico
//!   and ORBacus do ("always copy data for marshalling and
//!   unmarshalling", §4.4) and what caps them at 55–63 MB/s in Figure 7.
//! * [`MarshalStrategy::ZeroCopy`] — octet sequences at or above
//!   [`ZERO_COPY_THRESHOLD`] are appended as reference-counted segments;
//!   only the small header parts are serialized. omniORB's approach.
//!
//! This implementation always encodes little-endian and records that in
//! the encapsulation flag; readers reject the big-endian flag (a
//! documented simplification — both ends of this grid are the same
//! library).

use bytes::Bytes;
use padico_fabric::pool::{self, PooledBuf};
use padico_fabric::Payload;

use crate::error::OrbError;
pub use crate::profile::MarshalStrategy;

/// Octet sequences at least this long are spliced zero-copy (omniORB
/// applies the same idea through its `giopStream` buffer management).
pub const ZERO_COPY_THRESHOLD: usize = 1 << 10;

/// CDR encoder.
pub struct CdrWriter {
    strategy: MarshalStrategy,
    /// Completed segments (zero-copy splices and flushed buffers).
    out: Payload,
    /// Current append buffer — a pooled scratch slab, recycled between
    /// messages instead of allocated per message.
    buf: PooledBuf,
    /// Global offset = bytes already in `out` + `buf`.
    offset: usize,
}

impl CdrWriter {
    pub fn new(strategy: MarshalStrategy) -> Self {
        CdrWriter {
            strategy,
            out: Payload::new(),
            buf: pool::lease(256),
            offset: 0,
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.offset
    }

    pub fn is_empty(&self) -> bool {
        self.offset == 0
    }

    fn align(&mut self, to: usize) {
        let pad = (to - (self.offset % to)) % to;
        for _ in 0..pad {
            self.buf.push(0);
        }
        self.offset += pad;
    }

    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        self.offset += bytes.len();
    }

    pub fn write_u8(&mut self, v: u8) {
        self.push(&[v]);
    }

    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    pub fn write_u16(&mut self, v: u16) {
        self.align(2);
        self.push(&v.to_le_bytes());
    }

    pub fn write_u32(&mut self, v: u32) {
        self.align(4);
        self.push(&v.to_le_bytes());
    }

    pub fn write_i32(&mut self, v: i32) {
        self.align(4);
        self.push(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.align(8);
        self.push(&v.to_le_bytes());
    }

    pub fn write_i64(&mut self, v: i64) {
        self.align(8);
        self.push(&v.to_le_bytes());
    }

    pub fn write_f32(&mut self, v: f32) {
        self.align(4);
        self.push(&v.to_le_bytes());
    }

    pub fn write_f64(&mut self, v: f64) {
        self.align(8);
        self.push(&v.to_le_bytes());
    }

    /// CORBA string: u32 length including NUL, bytes, NUL.
    pub fn write_string(&mut self, s: &str) {
        self.write_u32(s.len() as u32 + 1);
        self.push(s.as_bytes());
        self.push(&[0]);
    }

    /// `sequence<octet>`: u32 length then raw bytes. Bulk payloads take
    /// the strategy's fast path.
    pub fn write_octet_seq(&mut self, data: Bytes) {
        self.write_u32(data.len() as u32);
        match self.strategy {
            MarshalStrategy::ZeroCopy if data.len() >= ZERO_COPY_THRESHOLD => {
                // Splice: flush the scratch buffer, then hand the bytes
                // off by reference.
                if !self.buf.is_empty() {
                    let flushed = std::mem::replace(&mut self.buf, pool::lease(256));
                    self.out.push_segment(flushed.freeze());
                }
                self.offset += data.len();
                self.out.push_segment(data);
            }
            _ => {
                self.push(&data);
            }
        }
    }

    /// `sequence<octet>` assembled from multiple parts under one length
    /// prefix: u32 `total_len`, then each part in order. Strided
    /// redistribution runs marshal this way — the source's pieces are
    /// not contiguous in its local block, but the wire sequence is one
    /// logical octet sequence. Each part takes the strategy's fast path
    /// independently, so bulk pieces still splice zero-copy.
    pub fn write_octet_gather<I>(&mut self, total_len: usize, parts: I)
    where
        I: IntoIterator<Item = Bytes>,
    {
        self.write_u32(total_len as u32);
        let mut written = 0usize;
        for part in parts {
            written += part.len();
            match self.strategy {
                MarshalStrategy::ZeroCopy if part.len() >= ZERO_COPY_THRESHOLD => {
                    if !self.buf.is_empty() {
                        let flushed = std::mem::replace(&mut self.buf, pool::lease(256));
                        self.out.push_segment(flushed.freeze());
                    }
                    self.offset += part.len();
                    self.out.push_segment(part);
                }
                _ => {
                    self.push(&part);
                }
            }
        }
        debug_assert_eq!(written, total_len, "gather parts must sum to the declared length");
    }

    /// `sequence<octet>` from a borrowed slice (always copies once).
    pub fn write_octet_slice(&mut self, data: &[u8]) {
        self.write_u32(data.len() as u32);
        self.push(data);
    }

    /// `sequence<long>` (i32 elements).
    pub fn write_i32_seq(&mut self, data: &[i32]) {
        self.write_u32(data.len() as u32);
        self.align(4);
        for v in data {
            self.push(&v.to_le_bytes());
        }
    }

    /// `sequence<double>`.
    pub fn write_f64_seq(&mut self, data: &[f64]) {
        self.write_u32(data.len() as u32);
        if !data.is_empty() {
            self.align(8);
            for v in data {
                self.push(&v.to_le_bytes());
            }
        }
    }

    /// Finish and return the encoded payload.
    pub fn finish(mut self) -> Payload {
        if !self.buf.is_empty() {
            // `take` leaves an inert unpooled placeholder, so no lease is
            // wasted on a writer that is done.
            let flushed = std::mem::take(&mut self.buf);
            self.out.push_segment(flushed.freeze());
        }
        self.out
    }
}

/// CDR decoder over a gather list.
///
/// The reader walks the payload's segments in place — building one never
/// flattens the iovec. A bulk read that happens to sit inside a single
/// segment (the common case for spliced octet sequences) comes back as a
/// zero-copy slice; only reads that straddle a segment boundary gather.
pub struct CdrReader {
    segs: Vec<Bytes>,
    /// Index of the current segment.
    seg: usize,
    /// Offset within the current segment.
    off: usize,
    /// Global decode position (alignment is relative to message start).
    pos: usize,
    /// Total bytes across all segments.
    len: usize,
}

impl CdrReader {
    /// Build a reader over a payload without copying it: each segment is
    /// a reference-counted handle onto the sender's storage.
    pub fn new(payload: &Payload) -> Self {
        let segs: Vec<Bytes> = payload.segments().cloned().collect();
        let len = payload.len();
        CdrReader {
            segs,
            seg: 0,
            off: 0,
            pos: 0,
            len,
        }
    }

    pub fn from_bytes(data: Bytes) -> Self {
        let len = data.len();
        CdrReader {
            segs: vec![data],
            seg: 0,
            off: 0,
            pos: 0,
            len,
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.len - self.pos.min(self.len)
    }

    /// Skip to the next non-exhausted segment.
    fn normalize(&mut self) {
        while self.seg < self.segs.len() && self.off == self.segs[self.seg].len() {
            self.seg += 1;
            self.off = 0;
        }
    }

    /// Advance the cursor by `n` bytes; the global position may run past
    /// the end (the next bounded read reports the short read).
    fn skip(&mut self, n: usize) {
        self.pos += n;
        let mut left = n;
        while left > 0 && self.seg < self.segs.len() {
            let avail = self.segs[self.seg].len() - self.off;
            let take = avail.min(left);
            self.off += take;
            left -= take;
            if self.off == self.segs[self.seg].len() {
                self.seg += 1;
                self.off = 0;
            }
        }
    }

    fn align(&mut self, to: usize) {
        let pad = (to - (self.pos % to)) % to;
        self.skip(pad);
    }

    fn short_read(&self, n: usize) -> OrbError {
        OrbError::Marshal(format!(
            "short read: need {n} bytes at offset {}, have {}",
            self.pos,
            self.remaining()
        ))
    }

    /// Copy exactly `out.len()` bytes into `out`, crossing segment
    /// boundaries as needed (scalars are tiny; the copy is the decode).
    fn take_into(&mut self, out: &mut [u8]) -> Result<(), OrbError> {
        let n = out.len();
        if self.pos + n > self.len {
            return Err(self.short_read(n));
        }
        let mut done = 0;
        while done < n {
            self.normalize();
            let seg = &self.segs[self.seg];
            let take = (seg.len() - self.off).min(n - done);
            out[done..done + take].copy_from_slice(&seg[self.off..self.off + take]);
            self.off += take;
            self.pos += take;
            done += take;
        }
        Ok(())
    }

    /// Read `n` raw bytes. Zero-copy (a refcounted slice) when the run
    /// lies within one segment; gathers otherwise.
    pub fn read_bytes(&mut self, n: usize) -> Result<Bytes, OrbError> {
        if self.pos + n > self.len {
            return Err(self.short_read(n));
        }
        if n == 0 {
            return Ok(Bytes::new());
        }
        self.normalize();
        let seg = &self.segs[self.seg];
        if self.off + n <= seg.len() {
            let s = seg.slice(self.off..self.off + n);
            self.off += n;
            self.pos += n;
            return Ok(s);
        }
        let mut out = Vec::with_capacity(n);
        let mut left = n;
        while left > 0 {
            self.normalize();
            let seg = &self.segs[self.seg];
            let take = (seg.len() - self.off).min(left);
            out.extend_from_slice(&seg[self.off..self.off + take]);
            self.off += take;
            self.pos += take;
            left -= take;
        }
        Ok(Bytes::from(out))
    }

    pub fn read_u8(&mut self) -> Result<u8, OrbError> {
        let mut b = [0u8; 1];
        self.take_into(&mut b)?;
        Ok(b[0])
    }

    pub fn read_bool(&mut self) -> Result<bool, OrbError> {
        Ok(self.read_u8()? != 0)
    }

    pub fn read_u16(&mut self) -> Result<u16, OrbError> {
        self.align(2);
        let mut b = [0u8; 2];
        self.take_into(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    pub fn read_u32(&mut self) -> Result<u32, OrbError> {
        self.align(4);
        let mut b = [0u8; 4];
        self.take_into(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    pub fn read_i32(&mut self) -> Result<i32, OrbError> {
        self.align(4);
        let mut b = [0u8; 4];
        self.take_into(&mut b)?;
        Ok(i32::from_le_bytes(b))
    }

    pub fn read_u64(&mut self) -> Result<u64, OrbError> {
        self.align(8);
        let mut b = [0u8; 8];
        self.take_into(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    pub fn read_i64(&mut self) -> Result<i64, OrbError> {
        self.align(8);
        let mut b = [0u8; 8];
        self.take_into(&mut b)?;
        Ok(i64::from_le_bytes(b))
    }

    pub fn read_f32(&mut self) -> Result<f32, OrbError> {
        self.align(4);
        let mut b = [0u8; 4];
        self.take_into(&mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    pub fn read_f64(&mut self) -> Result<f64, OrbError> {
        self.align(8);
        let mut b = [0u8; 8];
        self.take_into(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    pub fn read_string(&mut self) -> Result<String, OrbError> {
        let len = self.read_u32()? as usize;
        if len == 0 {
            return Err(OrbError::Marshal("string with zero length".into()));
        }
        let bytes = self.read_bytes(len)?;
        let (content, nul) = bytes.split_at(len - 1);
        if nul != [0] {
            return Err(OrbError::Marshal("string not NUL-terminated".into()));
        }
        String::from_utf8(content.to_vec())
            .map_err(|_| OrbError::Marshal("string is not UTF-8".into()))
    }

    /// `sequence<octet>` without copying: slices the underlying segment.
    pub fn read_octet_seq(&mut self) -> Result<Bytes, OrbError> {
        let len = self.read_u32()? as usize;
        if self.pos + len > self.len {
            return Err(OrbError::Marshal(format!(
                "octet sequence of {len} bytes overruns buffer"
            )));
        }
        self.read_bytes(len)
    }

    pub fn read_i32_seq(&mut self) -> Result<Vec<i32>, OrbError> {
        let len = self.read_u32()? as usize;
        if len != 0 {
            self.align(4);
        }
        let bytes = self.read_bytes(len * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }

    pub fn read_f64_seq(&mut self) -> Result<Vec<f64>, OrbError> {
        let len = self.read_u32()? as usize;
        if len != 0 {
            self.align(8);
        }
        let bytes = self.read_bytes(len * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(strategy: MarshalStrategy) {
        let mut w = CdrWriter::new(strategy);
        w.write_u8(7);
        w.write_u32(0xdead_beef); // forces 3 bytes of padding
        w.write_string("density");
        w.write_f64(-2.5);
        w.write_bool(true);
        w.write_u64(u64::MAX - 1);
        w.write_i32_seq(&[1, -2, 3]);
        let payload = w.finish();

        let mut r = CdrReader::new(&payload);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.read_string().unwrap(), "density");
        assert_eq!(r.read_f64().unwrap(), -2.5);
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.read_i32_seq().unwrap(), vec![1, -2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_copying() {
        roundtrip(MarshalStrategy::Copying);
    }

    #[test]
    fn roundtrip_zero_copy() {
        roundtrip(MarshalStrategy::ZeroCopy);
    }

    #[test]
    fn alignment_is_relative_to_message_start() {
        let mut w = CdrWriter::new(MarshalStrategy::Copying);
        w.write_u8(1); // offset 1
        w.write_u32(2); // pads to 4
        assert_eq!(w.len(), 8);
        w.write_u8(3); // offset 9
        w.write_f64(4.0); // pads to 16
        assert_eq!(w.len(), 24);
    }

    #[test]
    fn octet_gather_reads_back_as_one_sequence() {
        for strategy in [MarshalStrategy::Copying, MarshalStrategy::ZeroCopy] {
            let parts = [
                Bytes::from(vec![1u8; 16]),
                Bytes::from(vec![2u8; ZERO_COPY_THRESHOLD]),
                Bytes::from(vec![3u8; 8]),
            ];
            let total: usize = parts.iter().map(Bytes::len).sum();
            let mut w = CdrWriter::new(strategy);
            w.write_u8(42);
            w.write_octet_gather(total, parts.iter().cloned());
            w.write_u32(7);
            let payload = w.finish();

            let mut r = CdrReader::new(&payload);
            assert_eq!(r.read_u8().unwrap(), 42);
            let seq = r.read_octet_seq().unwrap();
            assert_eq!(seq.len(), total);
            assert_eq!(&seq[..16], &[1u8; 16]);
            assert_eq!(&seq[16..16 + ZERO_COPY_THRESHOLD], vec![2u8; ZERO_COPY_THRESHOLD]);
            assert_eq!(&seq[16 + ZERO_COPY_THRESHOLD..], &[3u8; 8]);
            assert_eq!(r.read_u32().unwrap(), 7);
            if strategy == MarshalStrategy::ZeroCopy {
                assert!(
                    payload.segment_count() >= 3,
                    "bulk middle part must splice: {} segments",
                    payload.segment_count()
                );
            }
        }
    }

    #[test]
    fn zero_copy_splices_large_octet_sequences() {
        let big = Bytes::from(vec![9u8; ZERO_COPY_THRESHOLD]);
        let mut w = CdrWriter::new(MarshalStrategy::ZeroCopy);
        w.write_u32(1);
        w.write_octet_seq(big.clone());
        w.write_u32(2);
        let payload = w.finish();
        assert!(
            payload.segment_count() >= 3,
            "header, spliced body, trailer: got {}",
            payload.segment_count()
        );
        let mut r = CdrReader::new(&payload);
        assert_eq!(r.read_u32().unwrap(), 1);
        assert_eq!(r.read_octet_seq().unwrap(), big);
        assert_eq!(r.read_u32().unwrap(), 2);
    }

    #[test]
    fn copying_strategy_never_splices() {
        let big = Bytes::from(vec![9u8; 1 << 16]);
        let mut w = CdrWriter::new(MarshalStrategy::Copying);
        w.write_octet_seq(big);
        let payload = w.finish();
        assert_eq!(payload.segment_count(), 1);
    }

    #[test]
    fn small_octet_seq_is_inlined_even_zero_copy() {
        let small = Bytes::from_static(b"tiny");
        let mut w = CdrWriter::new(MarshalStrategy::ZeroCopy);
        w.write_octet_seq(small.clone());
        let payload = w.finish();
        assert_eq!(payload.segment_count(), 1);
        let mut r = CdrReader::new(&payload);
        assert_eq!(r.read_octet_seq().unwrap(), small);
    }

    #[test]
    fn alignment_continues_after_splice() {
        // After a spliced odd-length sequence the global offset is odd;
        // the next u32 must pad relative to the message start.
        let odd = Bytes::from(vec![1u8; ZERO_COPY_THRESHOLD + 3]);
        let mut w = CdrWriter::new(MarshalStrategy::ZeroCopy);
        w.write_octet_seq(odd.clone());
        w.write_u32(0xffff_0000);
        let payload = w.finish();
        let mut r = CdrReader::new(&payload);
        assert_eq!(r.read_octet_seq().unwrap(), odd);
        assert_eq!(r.read_u32().unwrap(), 0xffff_0000);
    }

    #[test]
    fn short_reads_are_marshal_errors() {
        let mut w = CdrWriter::new(MarshalStrategy::Copying);
        w.write_u32(100); // claims a 100-element sequence
        let payload = w.finish();
        let mut r = CdrReader::new(&payload);
        assert!(matches!(r.read_octet_seq(), Err(OrbError::Marshal(_))));

        let mut r2 = CdrReader::from_bytes(Bytes::from_static(&[1, 2]));
        assert!(matches!(r2.read_u64(), Err(OrbError::Marshal(_))));
    }

    #[test]
    fn string_validation() {
        // Missing NUL terminator.
        let mut bad = CdrWriter::new(MarshalStrategy::Copying);
        bad.write_u32(3);
        bad.write_u8(b'h');
        bad.write_u8(b'i');
        bad.write_u8(b'!');
        let mut r = CdrReader::new(&bad.finish());
        assert!(matches!(r.read_string(), Err(OrbError::Marshal(_))));
    }

    #[test]
    fn f64_seq_roundtrip_with_offset() {
        let mut w = CdrWriter::new(MarshalStrategy::Copying);
        w.write_u8(1); // knock alignment off
        w.write_f64_seq(&[1.0, -2.0, 3.5]);
        w.write_f64_seq(&[]);
        let mut r = CdrReader::new(&w.finish());
        assert_eq!(r.read_u8().unwrap(), 1);
        assert_eq!(r.read_f64_seq().unwrap(), vec![1.0, -2.0, 3.5]);
        assert_eq!(r.read_f64_seq().unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn reader_over_gather_list_aliases_spliced_segment() {
        // Decoding a spliced bulk sequence from a multi-segment payload
        // must hand back the very segment the writer spliced in — no
        // flatten on construction, no copy on read.
        let big = Bytes::from(vec![3u8; ZERO_COPY_THRESHOLD * 2]);
        let big_ptr = big.as_ptr();
        let mut w = CdrWriter::new(MarshalStrategy::ZeroCopy);
        w.write_u32(42);
        w.write_octet_seq(big);
        w.write_string("tail");
        let payload = w.finish();
        assert!(payload.segment_count() >= 3);
        let mut r = CdrReader::new(&payload);
        assert_eq!(r.read_u32().unwrap(), 42);
        let seq = r.read_octet_seq().unwrap();
        assert_eq!(seq.len(), ZERO_COPY_THRESHOLD * 2);
        assert_eq!(seq.as_ptr(), big_ptr, "bulk read must alias the splice");
        assert_eq!(r.read_string().unwrap(), "tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn scalar_reads_cross_segment_boundaries() {
        // A u64 split across two segments still decodes (gathered into a
        // stack buffer), with alignment tracked globally.
        let mut p = Payload::new();
        p.push_segment(Bytes::from_static(&[0xEF, 0xBE, 0xAD]));
        p.push_segment(Bytes::from_static(&[0xDE, 0, 0, 0, 0]));
        let mut r = CdrReader::new(&p);
        assert_eq!(r.read_u64().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn read_octet_seq_is_zero_copy_slice() {
        let mut w = CdrWriter::new(MarshalStrategy::Copying);
        w.write_octet_slice(&[5u8; 64]);
        let payload = w.finish();
        let backing = payload.to_contiguous();
        let mut r = CdrReader::from_bytes(backing.clone());
        let seq = r.read_octet_seq().unwrap();
        // A Bytes slice of the same buffer shares the allocation.
        assert_eq!(seq.as_ptr(), backing[4..].as_ptr());
    }
}

impl std::fmt::Debug for CdrReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CdrReader(pos {} of {} bytes)", self.pos, self.len)
    }
}

impl std::fmt::Debug for CdrWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CdrWriter({} bytes, {:?})", self.offset, self.strategy)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// An arbitrary CDR write sequence, mirrored as typed expectations.
    #[derive(Debug, Clone)]
    enum Item {
        U8(u8),
        U16(u16),
        U32(u32),
        I32(i32),
        U64(u64),
        I64(i64),
        F64(f64),
        Bool(bool),
        Str(String),
        Octets(Vec<u8>),
        I32Seq(Vec<i32>),
        F64Seq(Vec<f64>),
    }

    fn item_strategy() -> impl Strategy<Value = Item> {
        prop_oneof![
            any::<u8>().prop_map(Item::U8),
            any::<u16>().prop_map(Item::U16),
            any::<u32>().prop_map(Item::U32),
            any::<i32>().prop_map(Item::I32),
            any::<u64>().prop_map(Item::U64),
            any::<i64>().prop_map(Item::I64),
            any::<f64>()
                .prop_filter("finite", |v| v.is_finite())
                .prop_map(Item::F64),
            any::<bool>().prop_map(Item::Bool),
            "[a-zA-Z0-9 _-]{0,24}".prop_map(Item::Str),
            proptest::collection::vec(any::<u8>(), 0..2048).prop_map(Item::Octets),
            proptest::collection::vec(any::<i32>(), 0..32).prop_map(Item::I32Seq),
            proptest::collection::vec(
                any::<f64>().prop_filter("finite", |v| v.is_finite()),
                0..32
            )
            .prop_map(Item::F64Seq),
        ]
    }

    proptest! {
        /// Any write sequence decodes back identically under both
        /// marshalling strategies — the interoperability guarantee the
        /// mixed-ORB grid depends on.
        #[test]
        fn any_sequence_roundtrips(
            items in proptest::collection::vec(item_strategy(), 0..24),
            zero_copy: bool,
        ) {
            let strategy = if zero_copy {
                MarshalStrategy::ZeroCopy
            } else {
                MarshalStrategy::Copying
            };
            let mut w = CdrWriter::new(strategy);
            for item in &items {
                match item {
                    Item::U8(v) => w.write_u8(*v),
                    Item::U16(v) => w.write_u16(*v),
                    Item::U32(v) => w.write_u32(*v),
                    Item::I32(v) => w.write_i32(*v),
                    Item::U64(v) => w.write_u64(*v),
                    Item::I64(v) => w.write_i64(*v),
                    Item::F64(v) => w.write_f64(*v),
                    Item::Bool(v) => w.write_bool(*v),
                    Item::Str(v) => w.write_string(v),
                    Item::Octets(v) => w.write_octet_seq(Bytes::from(v.clone())),
                    Item::I32Seq(v) => w.write_i32_seq(v),
                    Item::F64Seq(v) => w.write_f64_seq(v),
                }
            }
            let payload = w.finish();
            let mut r = CdrReader::new(&payload);
            for item in &items {
                match item {
                    Item::U8(v) => prop_assert_eq!(r.read_u8().unwrap(), *v),
                    Item::U16(v) => prop_assert_eq!(r.read_u16().unwrap(), *v),
                    Item::U32(v) => prop_assert_eq!(r.read_u32().unwrap(), *v),
                    Item::I32(v) => prop_assert_eq!(r.read_i32().unwrap(), *v),
                    Item::U64(v) => prop_assert_eq!(r.read_u64().unwrap(), *v),
                    Item::I64(v) => prop_assert_eq!(r.read_i64().unwrap(), *v),
                    Item::F64(v) => prop_assert_eq!(r.read_f64().unwrap(), *v),
                    Item::Bool(v) => prop_assert_eq!(r.read_bool().unwrap(), *v),
                    Item::Str(v) => prop_assert_eq!(&r.read_string().unwrap(), v),
                    Item::Octets(v) => {
                        prop_assert_eq!(r.read_octet_seq().unwrap(), Bytes::from(v.clone()))
                    }
                    Item::I32Seq(v) => prop_assert_eq!(&r.read_i32_seq().unwrap(), v),
                    Item::F64Seq(v) => prop_assert_eq!(&r.read_f64_seq().unwrap(), v),
                }
            }
            prop_assert_eq!(r.remaining(), 0);
        }
    }
}
