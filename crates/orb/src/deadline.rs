//! Ambient end-to-end deadline propagation.
//!
//! An invocation's deadline is an *absolute* virtual-time instant that
//! travels with the request (a GIOP service-context entry / ESIOP head
//! word) and bounds the whole call tree: a servant that invokes further
//! objects must not grant its downstream calls more budget than it has
//! itself.
//!
//! The mechanism mirrors [`padico_util::span`]'s ambient trace context:
//! the server dispatch path [`adopt`]s the wire deadline around the
//! servant call, and every client-side invocation started under that
//! guard clamps its own configured deadline to [`current`]. The guard
//! nests (a tighter inner deadline wins while it is live) and restores
//! the previous value on drop, so thread-pooled dispatch cannot leak a
//! stale deadline into an unrelated request.
//!
//! Plumbing is by value, not by reference: a fan-out thread captures
//! `current()` before spawning and adopts it inside (same pattern as
//! span contexts in `padico-core`'s parallel client).

use std::cell::Cell;

thread_local! {
    /// Absolute virtual-time deadline of the request being served on
    /// this thread; 0 = none.
    static AMBIENT: Cell<u64> = const { Cell::new(0) };
}

/// Adopt `deadline_vt` (absolute virtual time) as this thread's ambient
/// deadline until the returned guard drops. Adopting 0 is a no-op that
/// still restores correctly.
pub fn adopt(deadline_vt: u64) -> DeadlineGuard {
    let prev = AMBIENT.with(|c| c.replace(deadline_vt));
    DeadlineGuard { prev }
}

/// The ambient deadline (absolute virtual time) of the request currently
/// being served on this thread, if any.
pub fn current() -> Option<u64> {
    let v = AMBIENT.with(|c| c.get());
    (v != 0).then_some(v)
}

/// Clamp an invocation's own absolute deadline to the ambient one: the
/// effective deadline of a nested call is the *earlier* of the two.
pub fn clamp(own_vt: u64) -> u64 {
    match current() {
        Some(ambient) => ambient.min(own_vt),
        None => own_vt,
    }
}

/// Restores the previously ambient deadline on drop.
#[must_use = "dropping the guard immediately un-adopts the deadline"]
pub struct DeadlineGuard {
    prev: u64,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        AMBIENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adopt_nest_and_restore() {
        assert_eq!(current(), None);
        {
            let _outer = adopt(1_000);
            assert_eq!(current(), Some(1_000));
            assert_eq!(clamp(5_000), 1_000, "ambient tightens a looser own deadline");
            assert_eq!(clamp(400), 400, "a tighter own deadline survives");
            {
                let _inner = adopt(300);
                assert_eq!(current(), Some(300));
            }
            assert_eq!(current(), Some(1_000), "inner guard restores outer");
        }
        assert_eq!(current(), None, "outer guard restores none");
        assert_eq!(clamp(777), 777, "no ambient leaves own deadline alone");
    }

    #[test]
    fn zero_adopt_is_transparent() {
        let _g = adopt(0);
        assert_eq!(current(), None);
    }
}
