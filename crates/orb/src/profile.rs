//! Calibrated ORB implementation profiles.
//!
//! One ORB core, five cost profiles. The paper's Figure 7 and §4.4 measure
//! four C++ ORBs plus Java OpenCCM, and attribute the differences to two
//! mechanisms this module parameterizes:
//!
//! 1. **Marshalling copies** — "unlike omniORB, Mico and ORBacus always
//!    copy data for marshalling and unmarshalling". Copy counts below are
//!    charged per payload byte at the host memcpy rate
//!    ([`padico_fabric::model::MEMCPY_MB_S`]) *and* mirrored by the code
//!    path: copying profiles run the copying CDR strategy, zero-copy
//!    profiles splice.
//! 2. **Per-request protocol work** — GIOP header handling, POA dispatch,
//!    allocation. Calibrated against the paper's small-message latencies
//!    (MPI 11 µs, omniORB 20 µs, ORBacus 54 µs, Mico 62 µs one-way).
//!
//! Resulting asymptotic bandwidths on Myrinet-2000 (line 250 MB/s,
//! packetization ≈0.12 ns/B): omniORB ≈ 239 MB/s, ORBacus ≈ 63 MB/s,
//! Mico ≈ 55 MB/s — the Figure 7 anchors.

use padico_fabric::model::{copy_cost, MEMCPY_MB_S};
use padico_util::simtime::{SimClock, VtDuration};

/// How the CDR encoder treats bulk octet sequences.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MarshalStrategy {
    /// Splice by reference (omniORB-style).
    ZeroCopy,
    /// Copy into a contiguous buffer (Mico/ORBacus-style).
    Copying,
}

/// Cost profile of one ORB implementation.
#[derive(Clone, Debug, PartialEq)]
pub struct OrbProfile {
    /// Implementation name as reported in the paper's figures.
    pub name: &'static str,
    pub strategy: MarshalStrategy,
    /// Full-payload copies charged on the client side per request
    /// (marshalling buffers, transport staging).
    pub client_copies: u32,
    /// Full-payload copies charged on the server side per request.
    pub server_copies: u32,
    /// Residual per-byte CPU cost (swizzling, checks), ns per byte.
    pub per_byte_extra_ns: f64,
    /// Client-side protocol work per *direction* (charged once when the
    /// request is marshalled and once when the reply is unmarshalled), ns.
    pub client_request_ns: VtDuration,
    /// Server-side protocol work per *direction* (request dispatch and
    /// reply marshal are charged separately), ns.
    pub server_request_ns: VtDuration,
}

impl OrbProfile {
    /// omniORB 3: zero-copy marshalling, lean dispatch.
    pub fn omniorb3() -> OrbProfile {
        OrbProfile {
            name: "omniORB-3.0.2",
            strategy: MarshalStrategy::ZeroCopy,
            client_copies: 0,
            server_copies: 0,
            per_byte_extra_ns: 0.04,
            client_request_ns: 6_500,
            server_request_ns: 6_500,
        }
    }

    /// omniORB 4: same engine, slightly leaner dispatch path.
    pub fn omniorb4() -> OrbProfile {
        OrbProfile {
            name: "omniORB-4.0.0",
            strategy: MarshalStrategy::ZeroCopy,
            client_copies: 0,
            server_copies: 0,
            per_byte_extra_ns: 0.03,
            client_request_ns: 6_000,
            server_request_ns: 6_000,
        }
    }

    /// Mico 2.3: copies on both sides of both directions.
    pub fn mico() -> OrbProfile {
        OrbProfile {
            name: "Mico-2.3.7",
            strategy: MarshalStrategy::Copying,
            client_copies: 2,
            server_copies: 2,
            per_byte_extra_ns: 0.85,
            client_request_ns: 27_500,
            server_request_ns: 27_500,
        }
    }

    /// ORBacus 4.0: one fewer staging copy than Mico, similar dispatch.
    pub fn orbacus() -> OrbProfile {
        OrbProfile {
            name: "ORBacus-4.0.5",
            strategy: MarshalStrategy::Copying,
            client_copies: 2,
            server_copies: 1,
            per_byte_extra_ns: 1.75,
            client_request_ns: 23_500,
            server_request_ns: 23_500,
        }
    }

    /// A Java CCM platform (OpenCCM on a 2002 JVM): copying plus
    /// serialization overhead per byte and heavier dispatch.
    pub fn java_like() -> OrbProfile {
        OrbProfile {
            name: "OpenCCM-Java",
            strategy: MarshalStrategy::Copying,
            client_copies: 3,
            server_copies: 3,
            per_byte_extra_ns: 11.8,
            client_request_ns: 75_000,
            server_request_ns: 75_000,
        }
    }

    /// All profiles the experiments sweep.
    pub fn all() -> Vec<OrbProfile> {
        vec![
            OrbProfile::omniorb3(),
            OrbProfile::omniorb4(),
            OrbProfile::mico(),
            OrbProfile::orbacus(),
            OrbProfile::java_like(),
        ]
    }

    /// Charge the client-side cost of a request carrying `len` payload
    /// bytes.
    pub fn charge_client(&self, clock: &SimClock, len: usize) {
        self.charge_client_scaled(clock, len, 1.0);
    }

    /// Client-side charge with the fixed protocol work scaled (ESIOP's
    /// lean framing pays a fraction of the GIOP fixed cost).
    pub fn charge_client_scaled(&self, clock: &SimClock, len: usize, fixed_scale: f64) {
        let mut cost = (self.client_request_ns as f64 * fixed_scale) as VtDuration;
        cost += u64::from(self.client_copies) * copy_cost(len);
        cost += (self.per_byte_extra_ns * len as f64 / 2.0).ceil() as VtDuration;
        clock.advance(cost);
    }

    /// Charge the server-side cost of dispatching a request of `len`
    /// payload bytes.
    pub fn charge_server(&self, clock: &SimClock, len: usize) {
        self.charge_server_scaled(clock, len, 1.0);
    }

    /// Server-side charge with the fixed protocol work scaled.
    pub fn charge_server_scaled(&self, clock: &SimClock, len: usize, fixed_scale: f64) {
        let mut cost = (self.server_request_ns as f64 * fixed_scale) as VtDuration;
        cost += u64::from(self.server_copies) * copy_cost(len);
        cost += (self.per_byte_extra_ns * len as f64 / 2.0).ceil() as VtDuration;
        clock.advance(cost);
    }

    /// Asymptotic per-byte cost the ORB adds on top of the fabric, ns.
    pub fn per_byte_total_ns(&self) -> f64 {
        let copies = f64::from(self.client_copies + self.server_copies);
        copies * 1_000.0 / MEMCPY_MB_S + self.per_byte_extra_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Myrinet wire cost per byte: line rate + packetization.
    const MYRINET_NS_PER_BYTE: f64 = 1_000.0 / 250.0 + 500.0 / 4096.0;

    fn asymptotic_on_myrinet(p: &OrbProfile) -> f64 {
        1_000.0 / (MYRINET_NS_PER_BYTE + p.per_byte_total_ns())
    }

    #[test]
    fn figure7_bandwidth_anchors() {
        let omni = asymptotic_on_myrinet(&OrbProfile::omniorb3());
        assert!((230.0..245.0).contains(&omni), "omniORB {omni} ≈ 240");
        let mico = asymptotic_on_myrinet(&OrbProfile::mico());
        assert!((50.0..60.0).contains(&mico), "Mico {mico} ≈ 55");
        let orbacus = asymptotic_on_myrinet(&OrbProfile::orbacus());
        assert!((58.0..68.0).contains(&orbacus), "ORBacus {orbacus} ≈ 63");
    }

    #[test]
    fn copying_orbs_use_copying_strategy() {
        assert_eq!(OrbProfile::mico().strategy, MarshalStrategy::Copying);
        assert_eq!(OrbProfile::orbacus().strategy, MarshalStrategy::Copying);
        assert_eq!(OrbProfile::omniorb3().strategy, MarshalStrategy::ZeroCopy);
        assert_eq!(OrbProfile::omniorb4().strategy, MarshalStrategy::ZeroCopy);
    }

    #[test]
    fn charges_scale_with_payload_for_copying_orbs_only() {
        let clock = SimClock::new();
        OrbProfile::omniorb3().charge_client(&clock, 1 << 20);
        let omni_cost = clock.now();
        let clock2 = SimClock::new();
        OrbProfile::mico().charge_client(&clock2, 1 << 20);
        let mico_cost = clock2.now();
        assert!(
            mico_cost > 5 * omni_cost,
            "Mico 1 MiB marshal {mico_cost} ≫ omniORB {omni_cost}"
        );
    }

    #[test]
    fn latency_ordering_matches_paper() {
        // Per-request protocol work: omniORB < ORBacus < Mico < Java.
        let req = |p: &OrbProfile| p.client_request_ns + p.server_request_ns;
        assert!(req(&OrbProfile::omniorb3()) < req(&OrbProfile::orbacus()));
        assert!(req(&OrbProfile::orbacus()) < req(&OrbProfile::mico()));
        assert!(req(&OrbProfile::mico()) < req(&OrbProfile::java_like()));
    }

    #[test]
    fn all_profiles_have_unique_names() {
        let names: Vec<&str> = OrbProfile::all().iter().map(|p| p.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
