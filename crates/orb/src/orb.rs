//! The ORB core: server loop, connection cache, request builder.
//!
//! One [`Orb`] instance runs per node (per middleware module). Its GIOP
//! endpoint is a VLink service, so whether requests ride Ethernet or
//! Myrinet is decided by PadicoTM's selector (or pinned by the experiment
//! through [`FabricChoice`]) — the ORB code itself is network-unaware,
//! which is the paper's whole point.
//!
//! The client side is a dynamic invocation interface: [`ObjectRef::request`]
//! returns a [`RequestBuilder`] onto which arguments are marshalled with
//! the profile's CDR strategy; [`RequestBuilder::invoke`] frames the GIOP
//! request, charges the profile's client-side costs, and blocks for the
//! reply. GridCCM's generated proxies drive exactly this interface.

use bytes::Bytes;
use padico_tm::runtime::PadicoTM;
use padico_tm::selector::FabricChoice;
use padico_tm::TmError;
use padico_util::ids::NodeId;
use padico_util::metrics::counter_add;
use padico_util::{trace_debug, trace_info};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::cdr::{CdrReader, CdrWriter};
use crate::error::OrbError;
use crate::giop::{self, GiopMessage, LocateStatus, ReplyStatus};
use crate::ior::Ior;
use crate::mux::{self, ReplyHandle, RequestMux};
use crate::poa::{Poa, Servant, ServerCtx};
use crate::profile::{MarshalStrategy, OrbProfile};
use padico_fabric::Payload;

/// Wire protocol spoken by a client connection. Servers auto-detect the
/// protocol of every incoming frame, so mixed-protocol grids work.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WireProtocol {
    /// The general inter-ORB protocol (default).
    #[default]
    Giop,
    /// The environment-specific fast path (see [`crate::esiop`]).
    Esiop,
}

impl WireProtocol {
    /// Scale applied to the fixed per-request protocol cost.
    pub fn fixed_cost_factor(self) -> f64 {
        match self {
            WireProtocol::Giop => 1.0,
            WireProtocol::Esiop => crate::esiop::ESIOP_FIXED_COST_FACTOR,
        }
    }
}

/// A running ORB on one node.
pub struct Orb {
    tm: Arc<PadicoTM>,
    name: String,
    profile: OrbProfile,
    choice: FabricChoice,
    poa: Arc<Poa>,
    endpoint_service: String,
    /// Pooled client connections, one [`RequestMux`] per (node, peer
    /// endpoint): the mux owns the stream, the pending-reply table, and
    /// request-id allocation, so every invocation to the same peer
    /// pipelines over one connection.
    conns: Mutex<HashMap<(NodeId, String), Arc<RequestMux>>>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    shutting_down: Arc<AtomicBool>,
    protocol: WireProtocol,
    admission: Arc<AdmissionController>,
    /// Replies suppressed because a CancelRequest beat the dispatch to
    /// completion. Deliberately NOT a registry counter: whether a cancel
    /// wins that race is wall-clock scheduling, and the metrics registry
    /// must stay byte-identical across same-seed runs.
    cancels_suppressed: std::sync::atomic::AtomicU64,
}

/// Bounded admission budget for inbound dispatches on one ORB endpoint.
///
/// Overload protection is shed-don't-queue: a request that cannot start
/// *immediately* is answered `TRANSIENT` on the spot instead of being
/// parked behind work that may itself be stuck. Queues convert overload
/// into latency for everyone; an instant shed converts it into a
/// retryable signal for one caller, and the transport's existing backoff
/// spreads the re-offered load out in time.
struct AdmissionController {
    /// Maximum concurrently dispatching requests; `None` = unbounded
    /// (admission control off, the default).
    budget: Option<u32>,
    inflight: AtomicU32,
    /// High-water mark of `inflight`; with a budget configured it can
    /// never exceed it — the overload chaos test asserts exactly that.
    peak: AtomicU32,
}

impl AdmissionController {
    fn new(budget: Option<u32>) -> Arc<AdmissionController> {
        Arc::new(AdmissionController {
            budget,
            inflight: AtomicU32::new(0),
            peak: AtomicU32::new(0),
        })
    }

    /// Admit one dispatch (RAII permit) or refuse instantly. Counters
    /// only move when a budget is configured, so default-config runs
    /// keep their metrics snapshots unchanged.
    fn try_admit(self: &Arc<Self>) -> Option<AdmissionPermit> {
        let Some(budget) = self.budget else {
            // Unbounded admission still counts in-flight dispatches:
            // `Orb::admission_inflight` is the quiescence probe tests
            // poll, and it must see running dispatches whether or not a
            // budget gates them. (The `orb.admission.admitted` counter
            // stays budget-only — it meters admission *decisions*.)
            let cur = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
            self.peak.fetch_max(cur, Ordering::AcqRel);
            return Some(AdmissionPermit {
                ctl: Some(Arc::clone(self)),
            });
        };
        loop {
            let cur = self.inflight.load(Ordering::Acquire);
            if cur >= budget {
                counter_add("orb.admission.shed", 1);
                return None;
            }
            if self
                .inflight
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.peak.fetch_max(cur + 1, Ordering::AcqRel);
                counter_add("orb.admission.admitted", 1);
                return Some(AdmissionPermit {
                    ctl: Some(Arc::clone(self)),
                });
            }
        }
    }
}

/// One admitted dispatch's slot in the inflight budget; freed on drop
/// (normal return and servant panic alike).
struct AdmissionPermit {
    ctl: Option<Arc<AdmissionController>>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        if let Some(ctl) = &self.ctl {
            ctl.inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Read the reason string out of an exceptional reply body (shed or
/// deadline replies carry one); malformed bodies degrade to a stock text
/// rather than masking the real failure with a marshal error.
fn reply_reason(strategy: MarshalStrategy, body: &Payload) -> String {
    let mut r = match strategy {
        MarshalStrategy::Copying => CdrReader::from_bytes(body.to_contiguous()),
        MarshalStrategy::ZeroCopy => CdrReader::new(body),
    };
    r.read_string().unwrap_or_else(|_| "unspecified".into())
}

impl Orb {
    /// Start an ORB: bind its GIOP endpoint and run the accept loop.
    ///
    /// `name` must be unique per node (it names the endpoint service).
    pub fn start(
        tm: Arc<PadicoTM>,
        name: &str,
        profile: OrbProfile,
        choice: FabricChoice,
    ) -> Result<Arc<Orb>, OrbError> {
        Self::start_with_protocol(tm, name, profile, choice, WireProtocol::Giop)
    }

    /// Start an ORB whose *client side* speaks the given wire protocol
    /// (the server side of every ORB auto-detects per frame).
    pub fn start_with_protocol(
        tm: Arc<PadicoTM>,
        name: &str,
        profile: OrbProfile,
        choice: FabricChoice,
        protocol: WireProtocol,
    ) -> Result<Arc<Orb>, OrbError> {
        let endpoint_service = format!("giop:{name}");
        let listener = tm.vlink_listen(&endpoint_service)?;
        let orb = Arc::new(Orb {
            tm: Arc::clone(&tm),
            name: name.to_string(),
            profile,
            choice,
            poa: Arc::new(Poa::new()),
            endpoint_service,
            conns: Mutex::new(HashMap::new()),
            accept_thread: Mutex::new(None),
            shutting_down: Arc::new(AtomicBool::new(false)),
            protocol,
            admission: AdmissionController::new(tm.config().inflight_budget),
            cancels_suppressed: std::sync::atomic::AtomicU64::new(0),
        });
        let accept_orb = Arc::clone(&orb);
        let handle = std::thread::Builder::new()
            .name(format!("orb-{}-{}", tm.node(), name))
            .spawn(move || {
                while !accept_orb.shutting_down.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok(stream) => {
                            if accept_orb.shutting_down.load(Ordering::Acquire) {
                                return;
                            }
                            let conn_orb = Arc::clone(&accept_orb);
                            std::thread::spawn(move || conn_orb.serve_connection(stream));
                        }
                        // An idle endpoint trips the accept deadline from
                        // time to time; that is not a failure of the ORB.
                        Err(TmError::Timeout(_)) => continue,
                        Err(_) => return,
                    }
                }
            })
            .expect("spawn orb accept thread");
        *orb.accept_thread.lock() = Some(handle);
        trace_info!(
            "orb",
            "{}: ORB `{name}` up ({})",
            tm.node(),
            orb.profile.name
        );
        Ok(orb)
    }

    pub fn node(&self) -> NodeId {
        self.tm.node()
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn profile(&self) -> &OrbProfile {
        &self.profile
    }

    pub fn poa(&self) -> &Arc<Poa> {
        &self.poa
    }

    pub fn tm(&self) -> &Arc<PadicoTM> {
        &self.tm
    }

    /// Activate a servant and return its object reference.
    pub fn activate(&self, servant: Arc<dyn Servant>) -> Ior {
        let type_id = servant.repository_id().to_string();
        let key = self.poa.activate(servant);
        Ior {
            type_id,
            node: self.tm.node(),
            endpoint: self.endpoint_service.clone(),
            key,
        }
    }

    /// Deactivate an object previously activated on this ORB.
    pub fn deactivate(&self, ior: &Ior) -> Result<(), OrbError> {
        self.poa.deactivate(ior.key)
    }

    /// Obtain a client-side reference from an IOR.
    pub fn object_ref(self: &Arc<Self>, ior: Ior) -> ObjectRef {
        ObjectRef {
            orb: Arc::clone(self),
            ior,
        }
    }

    /// Obtain a client-side reference from a stringified IOR.
    pub fn string_to_object(self: &Arc<Self>, s: &str) -> Result<ObjectRef, OrbError> {
        Ok(self.object_ref(Ior::destringify(s)?))
    }

    /// Stop accepting connections. Established connections drain on their
    /// own when peers close.
    pub fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop with a dummy connection — from a detached
        // thread, because the wake-up races thread startup: an accept
        // thread that saw the flag before its first accept() exits
        // without ever ACKing the dummy SYN, and shutdown must not sit
        // out that connect's full timeout-and-retry budget.
        let tm = Arc::clone(&self.tm);
        let endpoint = self.endpoint_service.clone();
        std::thread::spawn(move || {
            let _ = tm.vlink_connect(tm.node(), &endpoint, FabricChoice::Auto);
        });
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
    }

    /// Serve one inbound connection. Frames are read sequentially, but
    /// each Request is dispatched off the read loop (replies are written
    /// back under a per-connection write lock): component graphs routinely
    /// nest invocations through shared connections, and a blocking
    /// dispatch must not starve the requests queued behind it. Dispatches
    /// run on a grow-on-demand worker pool, so a pipelined client storm
    /// costs worker threads proportional to concurrent dispatches, not to
    /// requests submitted.
    fn serve_connection(self: Arc<Self>, stream: padico_tm::vlink::VLinkStream) {
        let stream = Arc::new(stream);
        let write_lock = Arc::new(Mutex::new(()));
        let pool = mux::DispatchPool::new(format!("orb-{}-dispatch", self.tm.node()), 16);
        // Requests this connection is still dispatching, keyed by request
        // id; the flag flips to true when a CancelRequest arrives and the
        // dispatch thread then suppresses its reply write. Entries are
        // removed when the dispatch finishes, so a cancel racing a
        // completed request is recognisably "late".
        let cancel_reg: Arc<Mutex<HashMap<u32, bool>>> = Arc::new(Mutex::new(HashMap::new()));
        let caller = stream.peer();
        loop {
            let frame = match stream.read_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) | Err(_) => return, // peer closed
            };
            // One decode/auto-detect path for the whole ORB: the same
            // routine the client-side mux pump uses.
            let (wire, decoded) = mux::decode_any(&frame);
            let msg = match decoded {
                Ok(msg) => msg,
                Err(_) => {
                    let _w = write_lock.lock();
                    let _ = stream
                        .write_payload(giop::encode_message_error())
                        .and_then(|()| stream.flush());
                    continue;
                }
            };
            match msg {
                GiopMessage::Request {
                    request_id,
                    response_expected,
                    object_key,
                    operation,
                    trace_id,
                    parent_span,
                    deadline,
                    body,
                } => {
                    // Admission decides *before* a dispatch thread exists:
                    // shed work never queues, never spawns, and answers
                    // TRANSIENT immediately (oneways are silently dropped
                    // — there is nobody to answer).
                    let Some(permit) = self.admission.try_admit() else {
                        padico_util::timeseries::bump(
                            "orb.admission.shed",
                            self.tm.clock().now(),
                        );
                        trace_debug!(
                            "orb",
                            "{}: shed request {request_id} (`{operation}`): \
                             admission budget exhausted",
                            self.tm.node()
                        );
                        if response_expected {
                            let mut w = CdrWriter::new(self.profile.strategy);
                            w.write_string("admission budget exhausted");
                            let frame = match wire {
                                WireProtocol::Giop => giop::encode_reply(
                                    request_id,
                                    ReplyStatus::Transient,
                                    w.finish(),
                                ),
                                WireProtocol::Esiop => crate::esiop::encode_reply(
                                    request_id,
                                    ReplyStatus::Transient,
                                    w.finish(),
                                ),
                            };
                            let _w = write_lock.lock();
                            let _ = stream
                                .write_payload(frame)
                                .and_then(|()| stream.flush());
                        }
                        continue;
                    };
                    cancel_reg.lock().insert(request_id, false);
                    let orb = Arc::clone(&self);
                    let stream = Arc::clone(&stream);
                    let write_lock = Arc::clone(&write_lock);
                    let cancel_reg = Arc::clone(&cancel_reg);
                    pool.submit(move || {
                        let _slot = permit;
                        orb.dispatch_request(
                            &stream,
                            &write_lock,
                            &cancel_reg,
                            caller,
                            wire,
                            request_id,
                            response_expected,
                            object_key,
                            operation,
                            trace_id,
                            parent_span,
                            deadline,
                            body,
                        );
                    });
                }
                GiopMessage::LocateRequest {
                    request_id,
                    object_key,
                } => {
                    let status = if self.poa.contains(object_key) {
                        LocateStatus::ObjectHere
                    } else {
                        LocateStatus::UnknownObject
                    };
                    let _w = write_lock.lock();
                    if stream
                        .write_payload(giop::encode_locate_reply(request_id, status))
                        .and_then(|()| stream.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                GiopMessage::CancelRequest { request_id } => {
                    // A cancel for a dispatch still in flight flags it so
                    // its reply write is suppressed (the client has
                    // already given up waiting); a cancel that lost the
                    // race against completion is logged and ignored, as
                    // real ORBs do.
                    let mut reg = cancel_reg.lock();
                    if let Some(flag) = reg.get_mut(&request_id) {
                        *flag = true;
                        trace_debug!(
                            "orb",
                            "CancelRequest {request_id}: reply will be suppressed"
                        );
                    } else {
                        trace_debug!("orb", "late CancelRequest {request_id}");
                    }
                }
                GiopMessage::CloseConnection => return,
                GiopMessage::Reply { .. } | GiopMessage::LocateReply { .. } => {
                    // Client-role messages on a server connection.
                    let _w = write_lock.lock();
                    let _ = stream
                        .write_payload(giop::encode_message_error())
                        .and_then(|()| stream.flush());
                }
                GiopMessage::MessageError => return,
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch_request(
        &self,
        stream: &padico_tm::vlink::VLinkStream,
        write_lock: &Mutex<()>,
        cancel_reg: &Mutex<HashMap<u32, bool>>,
        caller: NodeId,
        wire: WireProtocol,
        request_id: u32,
        response_expected: bool,
        object_key: crate::ior::ObjectKey,
        operation: String,
        trace_id: u64,
        parent_span: u64,
        deadline: u64,
        body: Payload,
    ) {
        let clock = self.tm.clock().share();
        // Adopt the caller's wire context so the servant's work (and any
        // nested invocations it makes) joins the caller's trace tree.
        let ctx_guard = (trace_id != 0).then(|| {
            padico_util::span::adopt(padico_util::span::SpanCtx {
                trace_id,
                span_id: parent_span,
            })
        });
        // A deadline that expired in flight short-circuits before any
        // servant work: the caller has already given up, so burning CPU
        // on the reply only steals time from requests that can still
        // make theirs. Answer the typed TIMEOUT instead.
        if deadline != 0 && clock.now() >= deadline {
            counter_add("orb.deadline.expired_server", 1);
            padico_util::timeseries::bump("orb.deadline.expired_server", clock.now());
            trace_debug!(
                "orb",
                "{}: request {request_id} (`{operation}`) arrived {} vns past \
                 its deadline; dispatch short-circuited",
                self.tm.node(),
                clock.now() - deadline
            );
            let cancelled = cancel_reg.lock().remove(&request_id).unwrap_or(false);
            if response_expected && !cancelled {
                let mut w = CdrWriter::new(self.profile.strategy);
                w.write_string(&format!(
                    "deadline expired {} vns before dispatch of `{operation}`",
                    clock.now() - deadline
                ));
                let frame = match wire {
                    WireProtocol::Giop => {
                        giop::encode_reply(request_id, ReplyStatus::DeadlineExceeded, w.finish())
                    }
                    WireProtocol::Esiop => crate::esiop::encode_reply(
                        request_id,
                        ReplyStatus::DeadlineExceeded,
                        w.finish(),
                    ),
                };
                let _w = write_lock.lock();
                let _ = stream.write_payload(frame).and_then(|()| stream.flush());
            }
            return;
        }
        // Whatever budget remains bounds the servant's own outgoing
        // invocations: nested calls clamp to the ambient deadline.
        let ambient_deadline = (deadline != 0).then(|| crate::deadline::adopt(deadline));
        let dispatch_span = padico_util::span::child(
            &clock,
            self.tm.node().0,
            "orb.dispatch",
            format!("dispatch:{operation}:req{request_id}"),
        );
        self.profile
            .charge_server_scaled(&clock, body.len(), wire.fixed_cost_factor());
        let mut reply_writer = CdrWriter::new(self.profile.strategy);
        let status = match self.poa.resolve(object_key) {
            Ok(servant) => {
                let ctx = ServerCtx {
                    node: self.tm.node(),
                    clock: clock.share(),
                    caller,
                };
                // Copying profiles physically flatten the request into
                // one unmarshalling buffer (the copy `charge_server`
                // accounts for); zero-copy profiles read the gather list
                // in place.
                let mut args = match self.profile.strategy {
                    MarshalStrategy::Copying => CdrReader::from_bytes(body.to_contiguous()),
                    MarshalStrategy::ZeroCopy => CdrReader::new(&body),
                };
                // A panicking servant must not hang its client: panics
                // become system exceptions, as real POAs map them.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    servant.dispatch(&operation, &mut args, &mut reply_writer, &ctx)
                }))
                .unwrap_or_else(|_| {
                    Err(OrbError::System(format!(
                        "servant panicked in `{operation}`"
                    )))
                });
                match outcome {
                    Ok(()) => ReplyStatus::NoException,
                    Err(OrbError::User(id)) => {
                        reply_writer = CdrWriter::new(self.profile.strategy);
                        reply_writer.write_string(&id);
                        ReplyStatus::UserException
                    }
                    Err(other) => {
                        reply_writer = CdrWriter::new(self.profile.strategy);
                        reply_writer.write_string(&other.to_string());
                        ReplyStatus::SystemException
                    }
                }
            }
            Err(e) => {
                reply_writer.write_string(&e.to_string());
                ReplyStatus::SystemException
            }
        };
        // The dispatch is over: leave the cancel registry. A cancel that
        // arrived while the servant ran suppresses the reply write — the
        // client stopped waiting long ago and a stale reply would only be
        // discarded by its reader anyway.
        let cancelled = cancel_reg.lock().remove(&request_id).unwrap_or(false);
        if cancelled {
            self.cancels_suppressed
                .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
            trace_debug!(
                "orb",
                "{}: reply to cancelled request {request_id} suppressed",
                self.tm.node()
            );
        }
        if response_expected && !cancelled {
            let reply_payload = reply_writer.finish();
            // The reply marshal path costs like a server-side charge on
            // the reply body.
            self.profile
                .charge_server_scaled(&clock, reply_payload.len(), wire.fixed_cost_factor());
            let frame = match wire {
                WireProtocol::Giop => giop::encode_reply(request_id, status, reply_payload),
                WireProtocol::Esiop => {
                    crate::esiop::encode_reply(request_id, status, reply_payload)
                }
            };
            // Close the dispatch span *before* the reply goes out: the
            // instant the client sees the reply it may snapshot the span
            // buffers, and everything server-side must already be there.
            drop(dispatch_span);
            drop(ambient_deadline);
            drop(ctx_guard);
            let _w = write_lock.lock();
            let _ = stream.write_payload(frame).and_then(|()| stream.flush());
        }
    }

    fn connection(&self, node: NodeId, endpoint: &str) -> Result<Arc<RequestMux>, OrbError> {
        {
            let conns = self.conns.lock();
            if let Some(c) = conns.get(&(node, endpoint.to_string())) {
                return Ok(Arc::clone(c));
            }
        }
        let stream = Arc::new(
            self.tm
                .vlink_connect(node, endpoint, self.choice)
                .map_err(OrbError::from)?,
        );
        let conn = RequestMux::establish(
            stream,
            self.tm.config().engine,
            format!("orb-{}-reader", self.tm.node()),
        )?;
        self.conns
            .lock()
            .insert((node, endpoint.to_string()), Arc::clone(&conn));
        Ok(conn)
    }

    /// Drop the cached connection to an endpoint (tests simulate failures
    /// with this).
    pub fn drop_connection(&self, node: NodeId, endpoint: &str) {
        self.conns.lock().remove(&(node, endpoint.to_string()));
    }

    /// Outstanding (un-replied) client requests on the cached connection
    /// to `node`/`endpoint`; 0 when no connection is cached. Robustness
    /// tests use this to prove abandoned requests do not leak `pending`
    /// entries.
    pub fn pending_request_count(&self, node: NodeId, endpoint: &str) -> usize {
        self.conns
            .lock()
            .get(&(node, endpoint.to_string()))
            .map_or(0, |c| c.pending_len())
    }

    /// High-water mark of concurrently admitted dispatches over this
    /// ORB's lifetime. With [`padico_tm::TmConfig::inflight_budget`]
    /// configured this can never exceed the budget — the overload chaos
    /// test asserts exactly that.
    pub fn admission_inflight_peak(&self) -> u32 {
        self.admission.peak.load(Ordering::Acquire)
    }

    /// Dispatches currently admitted and still running. Tests poll this
    /// for quiescence so their follow-up traffic sees deterministic
    /// admission decisions.
    pub fn admission_inflight(&self) -> u32 {
        self.admission.inflight.load(Ordering::Acquire)
    }

    /// Replies suppressed because a `CancelRequest` arrived while the
    /// dispatch was still running.
    pub fn cancels_suppressed(&self) -> u64 {
        self.cancels_suppressed
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Whether a failed GIOP exchange is worth another attempt: only
    /// transport-level failures the TM classifies as retryable (timeouts,
    /// down links, mapping losses). Marshal errors, user/system
    /// exceptions, and hard closes are final.
    fn transport_retryable(&self, err: &OrbError) -> bool {
        match err {
            OrbError::CommFailure(e) | OrbError::Transient(e) => e.is_transient(),
            _ => false,
        }
    }

    /// Account one GIOP retry: charge the policy's backoff to the node's
    /// virtual clock and bump the recovery counters.
    fn note_giop_retry(&self, retry: u32, policy: &padico_tm::RetryPolicy) {
        padico_util::timeseries::bump("recovery.giop_retries", self.tm.clock().now());
        let charged = policy.charge_backoff(self.tm.clock(), retry);
        let recovery = self.tm.recovery();
        padico_tm::faults::note(recovery, |r| &r.giop_retries);
        padico_tm::faults::note_backoff(recovery, charged);
        trace_debug!(
            "orb",
            "{}: GIOP retry #{retry}, backed off {charged} vns",
            self.tm.node()
        );
    }
}

impl Drop for Orb {
    fn drop(&mut self) {
        self.shutting_down.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for Orb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Orb(`{}` on {} as {})",
            self.name,
            self.tm.node(),
            self.profile.name
        )
    }
}

/// Client-side reference to a (possibly remote) CORBA object.
#[derive(Clone)]
pub struct ObjectRef {
    orb: Arc<Orb>,
    ior: Ior,
}

impl ObjectRef {
    pub fn ior(&self) -> &Ior {
        &self.ior
    }

    /// The ORB this reference invokes through.
    pub fn orb(&self) -> &Arc<Orb> {
        &self.orb
    }

    /// Begin building an invocation.
    pub fn request(&self, operation: &str) -> RequestBuilder {
        RequestBuilder {
            target: self.clone(),
            operation: operation.to_string(),
            args: CdrWriter::new(self.orb.profile.strategy),
            idempotent: false,
        }
    }

    /// GIOP LocateRequest: is the object active at its endpoint?
    ///
    /// LocateRequest is idempotent by construction, so transient
    /// transport failures are retried within the TM's budget — this is
    /// the liveness probe parallel clients use to count survivors, and a
    /// single dropped frame must not misreport a healthy peer as dead.
    pub fn locate(&self) -> Result<bool, OrbError> {
        let orb = &self.orb;
        let policy = orb.tm.config().retry;
        let clock = orb.tm.clock();
        // Fixed end-to-end budget: retries spend it, they do not renew
        // it, and an ambient (server-side) deadline tightens it further.
        let deadline_vt = crate::deadline::clamp(
            clock.now() + orb.tm.config().default_deadline.as_nanos() as u64,
        );
        let mut retry = 0u32;
        loop {
            let remaining = deadline_vt.saturating_sub(clock.now());
            if remaining == 0 {
                counter_add("orb.deadline.expired_client", 1);
                return Err(OrbError::DeadlineExceeded(format!(
                    "locate budget spent after {retry} attempts"
                )));
            }
            let attempt = || -> Result<GiopMessage, OrbError> {
                let conn = orb.connection(self.ior.node, &self.ior.endpoint)?;
                let request_id = conn.next_request_id();
                let handle = conn
                    .submit(
                        request_id,
                        giop::encode_locate_request(request_id, self.ior.key),
                        true,
                    )?
                    .expect("reply expected");
                handle.wait(std::time::Duration::from_nanos(remaining))
            };
            match attempt() {
                Ok(GiopMessage::LocateReply { status, .. }) => {
                    return Ok(status == LocateStatus::ObjectHere)
                }
                Ok(other) => {
                    return Err(OrbError::Marshal(format!(
                        "expected LocateReply, got {other:?}"
                    )))
                }
                Err(err) => {
                    retry += 1;
                    if retry >= policy.max_attempts || !orb.transport_retryable(&err) {
                        return Err(err);
                    }
                    orb.note_giop_retry(retry, &policy);
                    orb.drop_connection(self.ior.node, &self.ior.endpoint);
                }
            }
        }
    }
}

impl std::fmt::Debug for ObjectRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjectRef({})", self.ior)
    }
}

/// A dynamic invocation in construction.
pub struct RequestBuilder {
    target: ObjectRef,
    operation: String,
    args: CdrWriter,
    idempotent: bool,
}

impl RequestBuilder {
    /// Declare the operation idempotent: the ORB may transparently
    /// re-issue the request after a transient transport failure, even
    /// when it cannot know whether the servant already executed it (the
    /// reply, not the request, may have been the frame that was lost).
    /// Without this flag a transient failure surfaces as
    /// [`OrbError::Transient`] after a single attempt and the *caller*
    /// decides whether re-issuing is safe — exactly CORBA's contract.
    pub fn idempotent(mut self) -> Self {
        self.idempotent = true;
        self
    }

    pub fn arg_u32(mut self, v: u32) -> Self {
        self.args.write_u32(v);
        self
    }

    pub fn arg_i32(mut self, v: i32) -> Self {
        self.args.write_i32(v);
        self
    }

    pub fn arg_u64(mut self, v: u64) -> Self {
        self.args.write_u64(v);
        self
    }

    pub fn arg_f64(mut self, v: f64) -> Self {
        self.args.write_f64(v);
        self
    }

    pub fn arg_bool(mut self, v: bool) -> Self {
        self.args.write_bool(v);
        self
    }

    pub fn arg_string(mut self, v: &str) -> Self {
        self.args.write_string(v);
        self
    }

    /// `sequence<octet>` argument; zero-copy profiles splice it.
    pub fn arg_octet_seq(mut self, v: Bytes) -> Self {
        self.args.write_octet_seq(v);
        self
    }

    pub fn arg_i32_seq(mut self, v: &[i32]) -> Self {
        self.args.write_i32_seq(v);
        self
    }

    pub fn arg_f64_seq(mut self, v: &[f64]) -> Self {
        self.args.write_f64_seq(v);
        self
    }

    /// Access the raw CDR writer for compound arguments.
    pub fn writer(&mut self) -> &mut CdrWriter {
        &mut self.args
    }

    /// Invoke and wait for the reply; returns a reader over the reply
    /// body on `NO_EXCEPTION`.
    pub fn invoke(self) -> Result<CdrReader, OrbError> {
        self.submit_inner(true)
            .wait_inner()
            .map(|r| r.expect("reply present"))
    }

    /// Invoke without waiting for any reply (CORBA `oneway`). "Waiting"
    /// here is about the *reply*: a oneway whose send failed still rides
    /// the retry loop before the error surfaces.
    pub fn invoke_oneway(self) -> Result<(), OrbError> {
        self.submit_inner(false).wait_inner().map(|_| ())
    }

    /// Two-phase invoke: frame and send the request *now*, collect the
    /// reply *later* with [`AsyncReply::wait`]. N outstanding requests
    /// cost N pending-table entries on the pooled connection, not N
    /// blocked threads, and replies may complete out of order — the mux
    /// routes each one to its handle by request id. A send error is
    /// parked in the handle for `wait` to retry or surface, so a caller
    /// can fan out a whole batch before looking at any outcome.
    pub fn submit(self) -> AsyncReply {
        self.submit_inner(true)
    }

    fn submit_inner(self, response_expected: bool) -> AsyncReply {
        let orb = Arc::clone(&self.target.orb);
        let ior = self.target.ior.clone();
        let clock = orb.tm.clock();
        let args = self.args.finish();
        let factor = orb.protocol.fixed_cost_factor();
        orb.profile.charge_client_scaled(clock, args.len(), factor);
        // The marshalled arguments (not the framed request) are what we
        // keep for re-issue: each attempt gets a *fresh* request id so a
        // straggler reply to an abandoned attempt can never be mistaken
        // for the reply of the retry.
        let policy = if self.idempotent {
            orb.tm.config().retry
        } else {
            padico_tm::RetryPolicy::none()
        };
        // The end-to-end budget is an *absolute* virtual-time deadline
        // fixed once, before the first attempt: retries and their backoff
        // spend it, they do not renew it. When this invocation runs
        // inside a servant dispatch, the caller's propagated deadline
        // clamps the budget further — a nested call can never outlive the
        // request that spawned it.
        let deadline_vt = crate::deadline::clamp(
            clock.now() + orb.tm.config().default_deadline.as_nanos() as u64,
        );
        let parent_ctx = padico_util::span::current();
        let mut pending = AsyncReply {
            orb,
            ior,
            operation: self.operation,
            args,
            response_expected,
            policy,
            deadline_vt,
            retry: 0,
            prev_attempt_span: 0,
            parent_ctx,
            attempt: AttemptState::Failed(OrbError::System("unsent".into())),
        };
        pending.start_attempt();
        pending
    }
}

/// An invocation in flight: the request frame is on (or chasing) the
/// wire and its reply will be routed back by request id through the
/// peer's pooled [`RequestMux`] connection. Holding an `AsyncReply`
/// costs one pending-table entry, not a blocked thread; under the
/// event-loop engine completion arrives as a scheduler event.
///
/// Retries, breakers, admission, deadlines, and span propagation behave
/// exactly as in the blocking path: `invoke()` *is* `submit()` + `wait()`.
pub struct AsyncReply {
    orb: Arc<Orb>,
    ior: Ior,
    operation: String,
    /// The marshalled arguments (not the framed request) are what we
    /// keep for re-issue: each attempt gets a *fresh* request id so a
    /// straggler reply to an abandoned attempt can never be mistaken
    /// for the reply of the retry.
    args: Payload,
    response_expected: bool,
    policy: padico_tm::RetryPolicy,
    deadline_vt: u64,
    retry: u32,
    prev_attempt_span: u64,
    /// Trace context ambient at submit time. Attempts started later
    /// (retries inside `wait`) re-adopt it, so re-issues parent onto the
    /// caller's trace even when `wait` runs on another thread.
    parent_ctx: Option<padico_util::span::SpanCtx>,
    attempt: AttemptState,
}

/// Where the current GIOP attempt of an [`AsyncReply`] stands.
enum AttemptState {
    /// Sent; the mux completes `handle` when the reply is routed. The
    /// attempt span is detached — still recording, closed when the
    /// attempt resolves — exactly as the blocking path scoped it.
    Waiting {
        span: padico_util::span::SpanGuard,
        /// `None` for oneways (nothing to wait on).
        handle: Option<ReplyHandle>,
        /// Reply budget, fixed *before* the send like the blocking path:
        /// time the request spends on the wire spends the budget.
        budget: std::time::Duration,
    },
    /// The attempt never got airborne (budget already spent, or the send
    /// itself failed); `wait` applies the retry decision.
    Failed(OrbError),
}

impl AsyncReply {
    /// The operation this invocation targets.
    pub fn operation(&self) -> &str {
        &self.operation
    }

    /// Block until the reply lands (or the budget is spent) and return a
    /// reader over the reply body on `NO_EXCEPTION`.
    pub fn wait(self) -> Result<CdrReader, OrbError> {
        self.wait_inner().map(|r| r.expect("reply present"))
    }

    /// Start one GIOP attempt: open its span, frame the request with a
    /// fresh request id, and hand it to the peer's mux.
    fn start_attempt(&mut self) {
        let orb = Arc::clone(&self.orb);
        let clock = orb.tm.clock();
        let remaining = self.deadline_vt.saturating_sub(clock.now());
        if remaining == 0 {
            counter_add("orb.deadline.expired_client", 1);
            self.attempt = AttemptState::Failed(OrbError::DeadlineExceeded(format!(
                "budget spent before attempt {} of `{}`",
                self.retry + 1,
                self.operation
            )));
            return;
        }
        // Install the submit-time context for the span parentage and the
        // transport's own tracing; restored on scope exit.
        let _ctx = self.parent_ctx.map(padico_util::span::adopt);
        // One span per GIOP attempt; a re-issue links back to the
        // attempt it replaces so the trace shows the recovery story.
        let mut attempt_span = padico_util::span::child_retry(
            clock,
            orb.tm.node().0,
            "orb.giop",
            format!("request:{}:attempt{}", self.operation, self.retry + 1),
            self.prev_attempt_span,
        );
        // The wire carries (trace id, this attempt's span id) so the
        // server parents its dispatch span on this exact attempt.
        let (wire_trace, wire_parent) =
            padico_util::span::current().map_or((0, 0), |c| (c.trace_id, c.span_id));
        let sent = (|| -> Result<Option<ReplyHandle>, OrbError> {
            let conn = orb.connection(self.ior.node, &self.ior.endpoint)?;
            let request_id = conn.next_request_id();
            let frame = match orb.protocol {
                WireProtocol::Giop => giop::encode_request(
                    request_id,
                    self.response_expected,
                    self.ior.key,
                    &self.operation,
                    wire_trace,
                    wire_parent,
                    self.deadline_vt,
                    self.args.clone(),
                ),
                WireProtocol::Esiop => crate::esiop::encode_request(
                    request_id,
                    self.response_expected,
                    self.ior.key,
                    &self.operation,
                    wire_trace,
                    wire_parent,
                    self.deadline_vt,
                    self.args.clone(),
                ),
            };
            conn.submit(request_id, frame, self.response_expected)
        })();
        self.attempt = match sent {
            Ok(handle) => {
                // The span outlives this scope — it closes when the
                // attempt resolves in `wait` — so hand the thread its
                // previous context back now.
                attempt_span.detach();
                AttemptState::Waiting {
                    span: attempt_span,
                    handle,
                    budget: std::time::Duration::from_nanos(remaining),
                }
            }
            Err(err) => {
                // A send that never left this node still closes its
                // attempt span, exactly like the blocking path did.
                self.prev_attempt_span = attempt_span.id();
                drop(attempt_span);
                AttemptState::Failed(err)
            }
        };
    }

    /// Resolve the current attempt: wait for its routed reply (if one is
    /// expected), convert overload replies to typed errors *before* the
    /// retry decision — a shed (`Transient` status) is retryable and
    /// rides the normal backoff, an expired deadline is terminal — and
    /// close the attempt span.
    fn resolve_attempt(&mut self) -> Result<Option<GiopMessage>, OrbError> {
        let state = std::mem::replace(
            &mut self.attempt,
            AttemptState::Failed(OrbError::System("attempt already resolved".into())),
        );
        match state {
            AttemptState::Failed(err) => Err(err),
            AttemptState::Waiting {
                span,
                handle,
                budget,
            } => {
                let outcome = match handle {
                    None => Ok(None),
                    Some(handle) => handle.wait(budget).and_then(|msg| match msg {
                        GiopMessage::Reply {
                            status: ReplyStatus::Transient,
                            body,
                            ..
                        } => Err(OrbError::Transient(TmError::Overloaded(reply_reason(
                            self.orb.profile.strategy,
                            &body,
                        )))),
                        GiopMessage::Reply {
                            status: ReplyStatus::DeadlineExceeded,
                            body,
                            ..
                        } => Err(OrbError::DeadlineExceeded(reply_reason(
                            self.orb.profile.strategy,
                            &body,
                        ))),
                        other => Ok(Some(other)),
                    }),
                };
                self.prev_attempt_span = span.id();
                drop(span);
                outcome
            }
        }
    }

    fn wait_inner(mut self) -> Result<Option<CdrReader>, OrbError> {
        let orb = Arc::clone(&self.orb);
        let clock = orb.tm.clock();
        let factor = orb.protocol.fixed_cost_factor();
        let msg = loop {
            let outcome = self.resolve_attempt();
            let outcome_was_shed =
                matches!(&outcome, Err(OrbError::Transient(TmError::Overloaded(_))));
            match outcome {
                Ok(Some(msg)) => break msg,
                Ok(None) => return Ok(None),
                Err(err) => {
                    self.retry += 1;
                    if self.retry >= self.policy.max_attempts || !orb.transport_retryable(&err) {
                        return Err(err);
                    }
                    orb.note_giop_retry(self.retry, &self.policy);
                    // The cached connection may be the broken thing:
                    // evict it so the next attempt reconnects (and the
                    // VLink layer gets the chance to fail over). A shed
                    // reply proves the connection works — keep it.
                    if !outcome_was_shed {
                        orb.drop_connection(self.ior.node, &self.ior.endpoint);
                    }
                    self.start_attempt();
                }
            }
        };
        match msg {
            GiopMessage::Reply {
                request_id: _,
                status,
                body,
            } => {
                // Unmarshalling the reply costs like a client-side charge
                // on the reply length.
                orb.profile
                    .charge_client_scaled(clock, body.len(), factor);
                // Same strategy split as the server side: copying
                // profiles flatten the reply, zero-copy ones read the
                // gather list in place.
                let reader = match orb.profile.strategy {
                    MarshalStrategy::Copying => CdrReader::from_bytes(body.to_contiguous()),
                    MarshalStrategy::ZeroCopy => CdrReader::new(&body),
                };
                match status {
                    ReplyStatus::NoException => Ok(Some(reader)),
                    ReplyStatus::UserException => {
                        let mut r = reader;
                        Err(OrbError::User(r.read_string()?))
                    }
                    ReplyStatus::SystemException => {
                        let mut r = reader;
                        Err(OrbError::System(r.read_string()?))
                    }
                    // Converted to typed errors inside the retry loop;
                    // kept here so the conversion cannot silently vanish
                    // if the loop is restructured.
                    ReplyStatus::Transient => {
                        let mut r = reader;
                        Err(OrbError::Transient(TmError::Overloaded(
                            r.read_string().unwrap_or_else(|_| "unspecified".into()),
                        )))
                    }
                    ReplyStatus::DeadlineExceeded => {
                        let mut r = reader;
                        Err(OrbError::DeadlineExceeded(
                            r.read_string().unwrap_or_else(|_| "unspecified".into()),
                        ))
                    }
                }
            }
            other => Err(OrbError::Marshal(format!(
                "expected Reply, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padico_fabric::topology::single_cluster;
    use padico_fabric::{FabricKind, FaultPlan};
    use padico_util::stats::mb_per_s;

    struct Calculator;

    impl Servant for Calculator {
        fn repository_id(&self) -> &str {
            "IDL:Test/Calculator:1.0"
        }

        fn dispatch(
            &self,
            operation: &str,
            args: &mut CdrReader,
            reply: &mut CdrWriter,
            ctx: &ServerCtx,
        ) -> Result<(), OrbError> {
            match operation {
                "add" => {
                    let a = args.read_i32()?;
                    let b = args.read_i32()?;
                    reply.write_i32(a + b);
                    Ok(())
                }
                "sum_seq" => {
                    let v = args.read_f64_seq()?;
                    reply.write_f64(v.iter().sum());
                    Ok(())
                }
                "echo_blob" => {
                    let blob = args.read_octet_seq()?;
                    reply.write_octet_seq(blob);
                    Ok(())
                }
                "noop" => Ok(()),
                "fail_system" => Err(OrbError::System("deliberate".into())),
                "fail_user" => Err(OrbError::User("IDL:Test/Oops:1.0".into())),
                "busy_compute" => {
                    ctx.clock.advance(1_000_000); // 1 ms of "simulation"
                    Ok(())
                }
                other => Err(OrbError::BadOperation(other.into())),
            }
        }
    }

    fn orb_pair(profile_a: OrbProfile, profile_b: OrbProfile) -> (Arc<Orb>, Arc<Orb>) {
        let (topo, _ids) = single_cluster(2);
        let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
        let a = Orb::start(
            Arc::clone(&tms[0]),
            "client",
            profile_a,
            FabricChoice::Kind(FabricKind::Myrinet),
        )
        .unwrap();
        let b = Orb::start(
            Arc::clone(&tms[1]),
            "server",
            profile_b,
            FabricChoice::Kind(FabricKind::Myrinet),
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn remote_invocation_roundtrip() {
        let (client, server) = orb_pair(OrbProfile::omniorb3(), OrbProfile::omniorb3());
        let ior = server.activate(Arc::new(Calculator));
        let obj = client.object_ref(ior);
        let mut reply = obj.request("add").arg_i32(40).arg_i32(2).invoke().unwrap();
        assert_eq!(reply.read_i32().unwrap(), 42);
    }

    #[test]
    fn stringified_ior_reaches_the_object() {
        let (client, server) = orb_pair(OrbProfile::omniorb4(), OrbProfile::omniorb4());
        let ior = server.activate(Arc::new(Calculator));
        let obj = client.string_to_object(&ior.stringify()).unwrap();
        let mut reply = obj
            .request("sum_seq")
            .arg_f64_seq(&[1.0, 2.5, -0.5])
            .invoke()
            .unwrap();
        assert_eq!(reply.read_f64().unwrap(), 3.0);
    }

    #[test]
    fn blob_roundtrip_across_profiles() {
        // A Mico client can talk to an omniORB server: interoperability.
        let (client, server) = orb_pair(OrbProfile::mico(), OrbProfile::omniorb3());
        let ior = server.activate(Arc::new(Calculator));
        let obj = client.object_ref(ior);
        let blob = padico_util::rng::payload(17, "orb-blob", 100_000);
        let mut reply = obj
            .request("echo_blob")
            .arg_octet_seq(Bytes::from(blob.clone()))
            .invoke()
            .unwrap();
        assert_eq!(reply.read_octet_seq().unwrap(), Bytes::from(blob));
    }

    #[test]
    fn exceptions_propagate_with_kind() {
        let (client, server) = orb_pair(OrbProfile::omniorb3(), OrbProfile::omniorb3());
        let ior = server.activate(Arc::new(Calculator));
        let obj = client.object_ref(ior);
        assert!(matches!(
            obj.request("fail_user").invoke(),
            Err(OrbError::User(id)) if id.contains("Oops")
        ));
        assert!(matches!(
            obj.request("fail_system").invoke(),
            Err(OrbError::System(_))
        ));
        assert!(matches!(
            obj.request("undefined_op").invoke(),
            Err(OrbError::System(msg)) if msg.contains("BAD_OPERATION")
        ));
    }

    #[test]
    fn invoking_a_deactivated_object_fails() {
        let (client, server) = orb_pair(OrbProfile::omniorb3(), OrbProfile::omniorb3());
        let ior = server.activate(Arc::new(Calculator));
        let obj = client.object_ref(ior.clone());
        assert!(obj.locate().unwrap());
        server.deactivate(&ior).unwrap();
        assert!(!obj.locate().unwrap());
        assert!(matches!(
            obj.request("noop").invoke(),
            Err(OrbError::System(msg)) if msg.contains("OBJECT_NOT_EXIST")
        ));
    }

    #[test]
    fn oneway_returns_without_server_work() {
        let (client, server) = orb_pair(OrbProfile::omniorb3(), OrbProfile::omniorb3());
        let ior = server.activate(Arc::new(Calculator));
        let obj = client.object_ref(ior);
        obj.request("busy_compute").invoke_oneway().unwrap();
        // A twoway afterwards proves the connection survived and the
        // oneway was dispatched (FIFO per connection).
        let mut reply = obj.request("add").arg_i32(1).arg_i32(2).invoke().unwrap();
        assert_eq!(reply.read_i32().unwrap(), 3);
    }

    #[test]
    fn zero_copy_profile_performs_zero_physical_copies() {
        // Acceptance check for the gather-list fast path: with a
        // zero-copy profile on a fabric without a kernel copy, the bulk
        // argument the servant sees IS the client's buffer — the splice
        // survived CDR, GIOP framing, VLink, the circuit, and dispatch.
        struct PtrRecorder(Mutex<Option<(usize, usize)>>);
        impl Servant for PtrRecorder {
            fn repository_id(&self) -> &str {
                "IDL:Test/PtrRecorder:1.0"
            }
            fn dispatch(
                &self,
                operation: &str,
                args: &mut CdrReader,
                reply: &mut CdrWriter,
                _ctx: &ServerCtx,
            ) -> Result<(), OrbError> {
                assert_eq!(operation, "take");
                let blob = args.read_octet_seq()?;
                *self.0.lock() = Some((blob.as_ptr() as usize, blob.len()));
                reply.write_bool(true);
                Ok(())
            }
        }
        let (client, server) = orb_pair(OrbProfile::omniorb3(), OrbProfile::omniorb3());
        let recorder = Arc::new(PtrRecorder(Mutex::new(None)));
        let ior = server.activate(Arc::clone(&recorder) as Arc<dyn Servant>);
        let obj = client.object_ref(ior);
        let blob = Bytes::from(vec![0x5A_u8; 1 << 16]);
        let blob_ptr = blob.as_ptr() as usize;
        let mut reply = obj
            .request("take")
            .arg_octet_seq(blob.clone())
            .invoke()
            .unwrap();
        assert!(reply.read_bool().unwrap());
        let (srv_ptr, srv_len) = recorder.0.lock().take().expect("servant ran");
        assert_eq!(srv_len, 1 << 16);
        assert_eq!(
            srv_ptr, blob_ptr,
            "servant must see the client's buffer, not a copy"
        );
    }

    #[test]
    fn zero_copy_profile_is_faster_than_copying_for_bulk() {
        // The Figure 7 mechanism, end to end: same 1 MiB echo, Myrinet
        // underneath; omniORB must beat Mico by roughly 4×.
        let len = 1 << 20;
        let measure = |profile: OrbProfile| {
            let (client, server) = orb_pair(profile.clone(), profile);
            let ior = server.activate(Arc::new(Calculator));
            let obj = client.object_ref(ior);
            let blob = Bytes::from(vec![7u8; len]);
            let clock = client.tm().clock();
            let start = clock.now();
            let mut reply = obj
                .request("echo_blob")
                .arg_octet_seq(blob)
                .invoke()
                .unwrap();
            reply.read_octet_seq().unwrap();
            // Round trip moved the payload twice.
            mb_per_s(2 * len, clock.now() - start)
        };
        let omni = measure(OrbProfile::omniorb3());
        let mico = measure(OrbProfile::mico());
        assert!(
            omni / mico > 2.5,
            "omniORB {omni:.1} MB/s should be ≫ Mico {mico:.1} MB/s"
        );
        assert!(
            (170.0..260.0).contains(&omni),
            "omniORB round-trip bandwidth {omni:.1} MB/s"
        );
    }

    #[test]
    fn small_invocation_latency_matches_paper_anchors() {
        let measure = |profile: OrbProfile| {
            let (client, server) = orb_pair(profile.clone(), profile);
            let ior = server.activate(Arc::new(Calculator));
            let obj = client.object_ref(ior);
            // Warm up the connection (SYN/ACK handshake charges once).
            obj.request("noop").invoke().unwrap();
            let clock = client.tm().clock();
            let start = clock.now();
            let rounds = 10;
            for _ in 0..rounds {
                obj.request("noop").invoke().unwrap();
            }
            // One-way latency estimate = RTT / 2.
            (clock.now() - start) as f64 / (rounds as f64) / 2.0 / 1_000.0
        };
        let omni = measure(OrbProfile::omniorb3());
        assert!(
            (14.0..27.0).contains(&omni),
            "omniORB one-way {omni:.1} µs, paper reports 20"
        );
        let mico = measure(OrbProfile::mico());
        assert!(
            (50.0..75.0).contains(&mico),
            "Mico one-way {mico:.1} µs, paper reports 62"
        );
        assert!(mico > omni * 2.0);
    }

    /// An ORB pair over Myrinet with tight deadlines, returning the
    /// Myrinet fabric so tests can arm fault plans on it. Faults are
    /// armed *after* this returns, so the connection warm-up each test
    /// does first isolates the request/reply recovery path.
    fn chaos_pair() -> (Arc<Orb>, Arc<Orb>, Arc<padico_fabric::SimFabric>) {
        use std::time::Duration;
        let (topo, ids) = single_cluster(2);
        let topo = Arc::new(topo);
        let fabric = topo
            .fabrics_between(ids[0], ids[1])
            .into_iter()
            .find(|f| f.kind() == FabricKind::Myrinet)
            .expect("cluster has Myrinet");
        let cfg = padico_tm::TmConfig {
            default_deadline: Duration::from_millis(60),
            connect_timeout: Duration::from_millis(250),
            retry: padico_tm::RetryPolicy {
                max_attempts: 6,
                ..Default::default()
            },
            ..Default::default()
        };
        let tms = PadicoTM::boot_all_with_config(Arc::clone(&topo), cfg).unwrap();
        let choice = FabricChoice::Kind(FabricKind::Myrinet);
        let a = Orb::start(Arc::clone(&tms[0]), "client", OrbProfile::omniorb3(), choice)
            .unwrap();
        let b = Orb::start(Arc::clone(&tms[1]), "server", OrbProfile::omniorb3(), choice)
            .unwrap();
        (a, b, fabric)
    }

    #[test]
    fn idempotent_requests_survive_seeded_frame_drops() {
        let (client, server, fabric) = chaos_pair();
        let ior = server.activate(Arc::new(Calculator));
        let obj = client.object_ref(ior);
        obj.request("add").arg_i32(1).arg_i32(1).invoke().unwrap(); // warm-up
        fabric.set_fault_plan(FaultPlan::drops(11, 20));
        for i in 0..10 {
            let mut reply = obj
                .request("add")
                .arg_i32(i)
                .arg_i32(1)
                .idempotent()
                .invoke()
                .unwrap();
            assert_eq!(reply.read_i32().unwrap(), i + 1);
        }
        let rec = client.tm().recovery().snapshot();
        assert!(
            rec.giop_retries > 0,
            "a 20% drop rate over 20 frames must trip at least one retry: {rec:?}"
        );
        assert!(rec.backoff_ns > 0, "retries charge backoff: {rec:?}");
        assert!(
            fabric.fault_stats().dropped > 0,
            "the plan actually dropped frames"
        );
    }

    #[test]
    fn non_idempotent_failure_is_transient_without_retry() {
        let (client, server, fabric) = chaos_pair();
        let ior = server.activate(Arc::new(Calculator));
        let obj = client.object_ref(ior);
        obj.request("noop").invoke().unwrap(); // warm-up
        fabric.set_fault_plan(FaultPlan::drops(1, 100));
        let err = obj.request("add").arg_i32(1).arg_i32(2).invoke().unwrap_err();
        assert!(
            matches!(err, OrbError::Transient(TmError::Timeout(_))),
            "lost exchange must surface as TRANSIENT, got {err}"
        );
        assert_eq!(
            client.tm().recovery().snapshot().giop_retries,
            0,
            "a request not declared idempotent must not be re-issued"
        );
    }

    #[test]
    fn shutdown_stops_accepting() {
        let (client, server) = orb_pair(OrbProfile::omniorb3(), OrbProfile::omniorb3());
        let ior = server.activate(Arc::new(Calculator));
        server.shutdown();
        let obj = client.object_ref(ior);
        // New connections cannot be established after shutdown; either
        // the connect times out or the write fails.
        let result = obj.request("noop").invoke();
        assert!(result.is_err(), "invoke after shutdown should fail");
    }
}

#[cfg(test)]
mod esiop_tests {
    use super::*;
    use crate::cdr::{CdrReader, CdrWriter};
    use crate::poa::{Servant, ServerCtx};
    use padico_fabric::topology::single_cluster;
    use padico_fabric::FabricKind;

    struct Echo;

    impl Servant for Echo {
        fn repository_id(&self) -> &str {
            "IDL:Esiop/Echo:1.0"
        }

        fn dispatch(
            &self,
            op: &str,
            args: &mut CdrReader,
            reply: &mut CdrWriter,
            _ctx: &ServerCtx,
        ) -> Result<(), OrbError> {
            match op {
                "echo" => {
                    let v = args.read_i32()?;
                    reply.write_i32(v);
                    Ok(())
                }
                other => Err(OrbError::BadOperation(other.into())),
            }
        }
    }

    fn pair(protocol: WireProtocol) -> (Arc<Orb>, Arc<Orb>) {
        let (topo, _ids) = single_cluster(2);
        let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
        let choice = FabricChoice::Kind(FabricKind::Myrinet);
        (
            Orb::start_with_protocol(
                Arc::clone(&tms[0]),
                "es",
                OrbProfile::omniorb3(),
                choice,
                protocol,
            )
            .unwrap(),
            Orb::start(Arc::clone(&tms[1]), "es", OrbProfile::omniorb3(), choice).unwrap(),
        )
    }

    #[test]
    fn esiop_interoperates_with_giop_servers() {
        // The server was started plain (GIOP default) and auto-detects.
        let (client, server) = pair(WireProtocol::Esiop);
        let obj = client.object_ref(server.activate(Arc::new(Echo)));
        let mut reply = obj.request("echo").arg_i32(7).invoke().unwrap();
        assert_eq!(reply.read_i32().unwrap(), 7);
        // Errors still flow.
        assert!(obj.request("nope").invoke().is_err());
    }

    #[test]
    fn esiop_lowers_latency_as_the_paper_anticipates() {
        let measure = |protocol: WireProtocol| {
            let (client, server) = pair(protocol);
            let obj = client.object_ref(server.activate(Arc::new(Echo)));
            obj.request("echo").arg_i32(0).invoke().unwrap(); // warmup
            let clock = client.tm().clock();
            let start = clock.now();
            for _ in 0..10 {
                obj.request("echo").arg_i32(0).invoke().unwrap();
            }
            (clock.now() - start) as f64 / 10.0 / 2.0 / 1_000.0
        };
        let giop = measure(WireProtocol::Giop);
        let esiop = measure(WireProtocol::Esiop);
        assert!(
            esiop < giop - 1.0,
            "ESIOP one-way {esiop:.1} µs should undercut GIOP {giop:.1} µs by >1 µs"
        );
        assert!(esiop > 10.0, "still bounded below by the fabric");
    }
}
