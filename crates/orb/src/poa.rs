//! Portable Object Adapter: servant registry and dispatch.
//!
//! Servants implement [`Servant`]; the [`Poa`] assigns object keys,
//! produces [`crate::ior::Ior`]s, and routes incoming requests. The etherealize
//! path (deactivation) is supported so components can be removed at
//! runtime, which CCM containers rely on.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use crate::cdr::{CdrReader, CdrWriter};
use crate::error::OrbError;
use crate::ior::ObjectKey;
use padico_util::ids::IdGen;
use padico_util::ids::NodeId;
use padico_util::simtime::SimClock;

/// Context a servant sees while dispatching.
pub struct ServerCtx {
    /// Node the servant runs on.
    pub node: NodeId,
    /// The node's virtual clock (servants charge their own compute time).
    pub clock: SimClock,
    /// Requesting node (from the connection).
    pub caller: NodeId,
}

/// A CORBA-style servant: dispatches operations by name, reading arguments
/// from a CDR stream and writing results to another.
pub trait Servant: Send + Sync {
    /// Interface repository id, e.g. `"IDL:Coupling/Density:1.0"`.
    fn repository_id(&self) -> &str;

    /// Handle one invocation.
    ///
    /// Returning `Err(OrbError::User(..))` maps to a GIOP user exception;
    /// other errors map to system exceptions.
    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        ctx: &ServerCtx,
    ) -> Result<(), OrbError>;
}

/// The object adapter of one ORB.
#[derive(Default)]
pub struct Poa {
    keys: IdGen,
    active: RwLock<HashMap<ObjectKey, Arc<dyn Servant>>>,
}

impl Poa {
    pub fn new() -> Self {
        Self::default()
    }

    /// Activate a servant; returns its object key.
    pub fn activate(&self, servant: Arc<dyn Servant>) -> ObjectKey {
        let key = ObjectKey(self.keys.next());
        self.active.write().insert(key, servant);
        key
    }

    /// Deactivate (etherealize) an object.
    pub fn deactivate(&self, key: ObjectKey) -> Result<(), OrbError> {
        self.active
            .write()
            .remove(&key)
            .map(|_| ())
            .ok_or_else(|| OrbError::ObjectNotExist(key.to_string()))
    }

    /// Look up the servant for a key.
    pub fn resolve(&self, key: ObjectKey) -> Result<Arc<dyn Servant>, OrbError> {
        self.active
            .read()
            .get(&key)
            .cloned()
            .ok_or_else(|| OrbError::ObjectNotExist(key.to_string()))
    }

    /// Whether an object is active (LocateRequest handling).
    pub fn contains(&self, key: ObjectKey) -> bool {
        self.active.read().contains_key(&key)
    }

    /// Number of active objects.
    pub fn active_count(&self) -> usize {
        self.active.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::MarshalStrategy;

    struct Echo;

    impl Servant for Echo {
        fn repository_id(&self) -> &str {
            "IDL:Test/Echo:1.0"
        }

        fn dispatch(
            &self,
            operation: &str,
            args: &mut CdrReader,
            reply: &mut CdrWriter,
            _ctx: &ServerCtx,
        ) -> Result<(), OrbError> {
            match operation {
                "echo" => {
                    let v = args.read_i32()?;
                    reply.write_i32(v);
                    Ok(())
                }
                other => Err(OrbError::BadOperation(other.into())),
            }
        }
    }

    fn ctx() -> ServerCtx {
        ServerCtx {
            node: NodeId(0),
            clock: SimClock::new(),
            caller: NodeId(1),
        }
    }

    #[test]
    fn activate_resolve_dispatch_deactivate() {
        let poa = Poa::new();
        let key = poa.activate(Arc::new(Echo));
        assert!(poa.contains(key));
        assert_eq!(poa.active_count(), 1);

        let servant = poa.resolve(key).unwrap();
        let mut args = CdrWriter::new(MarshalStrategy::Copying);
        args.write_i32(77);
        let mut reader = CdrReader::new(&args.finish());
        let mut reply = CdrWriter::new(MarshalStrategy::Copying);
        servant.dispatch("echo", &mut reader, &mut reply, &ctx()).unwrap();
        let mut out = CdrReader::new(&reply.finish());
        assert_eq!(out.read_i32().unwrap(), 77);

        poa.deactivate(key).unwrap();
        assert!(!poa.contains(key));
        assert!(matches!(
            poa.resolve(key),
            Err(OrbError::ObjectNotExist(_))
        ));
        assert!(poa.deactivate(key).is_err());
    }

    #[test]
    fn unknown_operation_is_bad_operation() {
        let poa = Poa::new();
        let key = poa.activate(Arc::new(Echo));
        let servant = poa.resolve(key).unwrap();
        let empty = CdrWriter::new(MarshalStrategy::Copying).finish();
        let mut reader = CdrReader::new(&empty);
        let mut reply = CdrWriter::new(MarshalStrategy::Copying);
        assert!(matches!(
            servant.dispatch("no_such_op", &mut reader, &mut reply, &ctx()),
            Err(OrbError::BadOperation(_))
        ));
    }

    #[test]
    fn keys_are_unique() {
        let poa = Poa::new();
        let a = poa.activate(Arc::new(Echo));
        let b = poa.activate(Arc::new(Echo));
        assert_ne!(a, b);
        assert_eq!(poa.active_count(), 2);
    }
}
