//! # padico-orb
//!
//! A miniature CORBA ORB built from scratch — the reproduction's stand-in
//! for the omniORB / Mico / ORBacus implementations the paper runs on top
//! of PadicoTM. There is no CORBA ecosystem in Rust, so this crate
//! reimplements the pieces Padico needs:
//!
//! * [`cdr`] — Common Data Representation marshalling (alignment rules,
//!   primitives, strings, sequences) with **two strategies**: a copying
//!   encoder (Mico/ORBacus always copy for marshalling and unmarshalling —
//!   the paper's stated cause of their 4× bandwidth gap in Figure 7) and a
//!   zero-copy encoder that hands large octet sequences off by reference
//!   (omniORB's trick);
//! * [`giop`] — the GIOP-style wire protocol: Request / Reply /
//!   LocateRequest / LocateReply / CancelRequest / CloseConnection /
//!   MessageError messages over a VLink stream (which may transparently
//!   ride Myrinet — that is PadicoTM's contribution);
//! * [`ior`] — interoperable object references naming (node, ORB
//!   endpoint, object key), with a stringified `IOR:` form;
//! * [`poa`] — a portable-object-adapter-style servant registry and
//!   dispatcher;
//! * [`profile`] — calibrated per-implementation cost profiles
//!   (`OmniOrb3`, `OmniOrb4`, `Mico`, `Orbacus`, `JavaLike`) whose copy
//!   counts and per-request overheads regenerate the paper's measured
//!   curves;
//! * [`orb`] — the ORB core: server loop, connection cache, request
//!   builder (a dynamic-invocation interface that GridCCM's generated
//!   proxies drive).

pub mod cdr;
pub mod deadline;
pub mod error;
pub mod esiop;
pub mod giop;
pub mod ior;
pub mod mux;
pub mod orb;
pub mod poa;
pub mod profile;

pub use error::OrbError;
pub use ior::{Ior, ObjectKey};
pub use mux::{ReplyHandle, RequestMux};
pub use orb::{AsyncReply, ObjectRef, Orb, RequestBuilder};
pub use poa::{Poa, Servant, ServerCtx};
pub use profile::{MarshalStrategy, OrbProfile};
