//! ORB error types, loosely mirroring CORBA system exceptions.

use padico_tm::TmError;
use std::fmt;

/// Errors raised by the ORB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrbError {
    /// Transport failure (CORBA `COMM_FAILURE`).
    CommFailure(TmError),
    /// Transient transport failure (CORBA `TRANSIENT`): the request did
    /// not reach the servant (or its reply was lost) and the retry budget
    /// ran out — the caller may safely re-issue it later.
    Transient(TmError),
    /// Marshalling/demarshalling failure (CORBA `MARSHAL`).
    Marshal(String),
    /// No servant for the object key (CORBA `OBJECT_NOT_EXIST`).
    ObjectNotExist(String),
    /// The servant does not implement the operation (CORBA `BAD_OPERATION`).
    BadOperation(String),
    /// Server-side failure surfaced to the client (CORBA system exception).
    System(String),
    /// Application-level exception raised by a servant (CORBA user
    /// exception); carries the exception repository id.
    User(String),
    /// Malformed IOR string.
    BadIor(String),
    /// The invocation's end-to-end deadline expired (CORBA `TIMEOUT`):
    /// either the propagated budget ran out client-side (possibly
    /// mid-retry-backoff) or the server observed an already-expired
    /// deadline and short-circuited dispatch. NOT retryable — a retry
    /// cannot beat an expired deadline.
    DeadlineExceeded(String),
}

impl OrbError {
    /// True when the failure happened in the arbitrated transport below
    /// the ORB (either CORBA flavour, `TRANSIENT` or `COMM_FAILURE`),
    /// as opposed to a marshalling, addressing or servant-side error.
    pub fn is_transport(&self) -> bool {
        matches!(self, OrbError::Transient(_) | OrbError::CommFailure(_))
    }

    /// True when the request may safely be re-issued: the transport
    /// classified the failure as transient (delegates to
    /// [`TmError::is_transient`], the stack's single classification
    /// point).
    pub fn is_retryable(&self) -> bool {
        matches!(self, OrbError::Transient(_))
    }
}

impl fmt::Display for OrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrbError::CommFailure(e) => write!(f, "COMM_FAILURE: {e}"),
            OrbError::Transient(e) => write!(f, "TRANSIENT: {e}"),
            OrbError::Marshal(what) => write!(f, "MARSHAL: {what}"),
            OrbError::ObjectNotExist(what) => write!(f, "OBJECT_NOT_EXIST: {what}"),
            OrbError::BadOperation(what) => write!(f, "BAD_OPERATION: {what}"),
            OrbError::System(what) => write!(f, "system exception: {what}"),
            OrbError::User(id) => write!(f, "user exception: {id}"),
            OrbError::BadIor(what) => write!(f, "bad IOR: {what}"),
            OrbError::DeadlineExceeded(what) => write!(f, "TIMEOUT: {what}"),
        }
    }
}

impl std::error::Error for OrbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrbError::CommFailure(e) | OrbError::Transient(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TmError> for OrbError {
    fn from(e: TmError) -> Self {
        OrbError::CommFailure(e)
    }
}

/// Classify a transport error the CORBA way: retryable conditions (the
/// peer may come back, another route may work) surface as `TRANSIENT`,
/// hard failures as `COMM_FAILURE`.
pub fn classify_transport(e: TmError) -> OrbError {
    if e.is_transient() {
        OrbError::Transient(e)
    } else {
        OrbError::CommFailure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_corba_exception_kinds() {
        assert!(OrbError::Marshal("short read".into())
            .to_string()
            .starts_with("MARSHAL"));
        assert!(OrbError::from(TmError::Closed)
            .to_string()
            .starts_with("COMM_FAILURE"));
        assert!(OrbError::User("IDL:App/Overflow:1.0".into())
            .to_string()
            .contains("Overflow"));
    }

    #[test]
    fn classification_and_source_chain() {
        use std::error::Error;
        let t = classify_transport(TmError::Timeout("reply".into()));
        assert!(matches!(t, OrbError::Transient(_)), "{t}");
        assert!(t.to_string().starts_with("TRANSIENT"));
        assert!(t.source().is_some(), "TRANSIENT keeps its source");
        let hard = classify_transport(TmError::Closed);
        assert!(matches!(hard, OrbError::CommFailure(_)), "{hard}");
        assert!(t.is_transport() && t.is_retryable());
        assert!(hard.is_transport() && !hard.is_retryable());
        let marshal = OrbError::Marshal("short read".into());
        assert!(!marshal.is_transport() && !marshal.is_retryable());
        // An expired deadline is typed, terminal, and never retried.
        let dl = OrbError::DeadlineExceeded("budget spent".into());
        assert!(!dl.is_transport() && !dl.is_retryable());
        assert!(dl.to_string().starts_with("TIMEOUT"));
        // Source chains reach the fabric layer through TmError.
        let deep = OrbError::from(TmError::from(padico_fabric::FabricError::Closed));
        assert!(deep.source().unwrap().source().is_some());
    }
}
