//! ESIOP: an Environment-Specific Inter-ORB Protocol.
//!
//! The paper (§4.4) observes that omniORB's 20 µs latency "could be
//! lowered if we used a specific protocol (called ESIOP) instead of the
//! general GIOP protocol". This module is that specific protocol for the
//! Padico environment: a compact binary framing that drops GIOP's
//! magic/version negotiation and string-free fast-path header, cutting
//! the fixed per-request protocol work (modelled by
//! [`ESIOP_FIXED_COST_FACTOR`]).
//!
//! Frames are distinguishable from GIOP on the wire by their first byte
//! (`0xE5` vs `'G'`), so a server accepts both protocols on one endpoint
//! and a client chooses per connection.
//!
//! ```text
//! [0xE5][type:1][request_id:4][key:8][trace_id:8][parent_span:8]
//!       [deadline:8][op_len:2][op bytes][pad to 8][body …]           Request
//! [0xE5][type:1][request_id:4][status:1][body …]                     Reply
//! ```
//!
//! `trace_id`/`parent_span` carry the caller's span context (both 0 for
//! an untraced request) and `deadline` the invocation's absolute
//! virtual-time deadline (0 = none) — ESIOP has no service-context list,
//! so the three words live at fixed offsets in the head.

use bytes::Bytes;
use padico_fabric::Payload;

use crate::error::OrbError;
use crate::giop::{GiopMessage, ReplyStatus};
use crate::ior::ObjectKey;

/// First byte of every ESIOP frame.
pub const MAGIC: u8 = 0xE5;

/// Fraction of the GIOP fixed per-request protocol cost an ESIOP request
/// pays (no text header parsing, no version negotiation, fixed offsets).
pub const ESIOP_FIXED_COST_FACTOR: f64 = 0.6;

const TYPE_REQUEST: u8 = 0;
const TYPE_REQUEST_ONEWAY: u8 = 1;
const TYPE_REPLY: u8 = 2;

/// Frame a request. The argument payload is appended by reference, so
/// zero-copy splices survive. `deadline` is the invocation's absolute
/// virtual-time deadline (0 = none).
#[allow(clippy::too_many_arguments)]
pub fn encode_request(
    request_id: u32,
    response_expected: bool,
    object_key: ObjectKey,
    operation: &str,
    trace_id: u64,
    parent_span: u64,
    deadline: u64,
    args: Payload,
) -> Payload {
    debug_assert!(operation.len() <= u16::MAX as usize);
    let mut head = Vec::with_capacity(40 + operation.len());
    head.push(MAGIC);
    head.push(if response_expected {
        TYPE_REQUEST
    } else {
        TYPE_REQUEST_ONEWAY
    });
    head.extend_from_slice(&request_id.to_le_bytes());
    head.extend_from_slice(&object_key.0.to_le_bytes());
    head.extend_from_slice(&trace_id.to_le_bytes());
    head.extend_from_slice(&parent_span.to_le_bytes());
    head.extend_from_slice(&deadline.to_le_bytes());
    head.extend_from_slice(&(operation.len() as u16).to_le_bytes());
    head.extend_from_slice(operation.as_bytes());
    // Pad the head to 8 bytes so CDR argument alignment is preserved.
    while head.len() % 8 != 0 {
        head.push(0);
    }
    let mut out = Payload::new();
    out.push_segment(Bytes::from(head));
    out.append(args);
    out
}

/// Frame a reply.
pub fn encode_reply(request_id: u32, status: ReplyStatus, body: Payload) -> Payload {
    let mut head = Vec::with_capacity(8);
    head.push(MAGIC);
    head.push(TYPE_REPLY);
    head.extend_from_slice(&request_id.to_le_bytes());
    head.push(status as u8);
    head.push(0); // pad to 8
    let mut out = Payload::new();
    out.push_segment(Bytes::from(head));
    out.append(body);
    out
}

/// Whether a frame is ESIOP (vs GIOP, vs garbage).
pub fn is_esiop(first_byte: u8) -> bool {
    first_byte == MAGIC
}

/// Decode one ESIOP frame into the common message model.
///
/// The head is one segment on the encode side, so the head flattens here
/// are free slices; the body is split off the gather list untouched.
pub fn decode(frame: &Payload) -> Result<GiopMessage, OrbError> {
    let total = frame.len();
    if total < 6 {
        return Err(OrbError::Marshal("not an ESIOP frame".into()));
    }
    let prefix = frame.split_at(6).0.to_contiguous();
    if prefix[0] != MAGIC {
        return Err(OrbError::Marshal("not an ESIOP frame".into()));
    }
    let msg_type = prefix[1];
    let request_id = u32::from_le_bytes(prefix[2..6].try_into().expect("4"));
    match msg_type {
        TYPE_REQUEST | TYPE_REQUEST_ONEWAY => {
            if total < 40 {
                return Err(OrbError::Marshal("ESIOP request too short".into()));
            }
            let fixed = frame.split_at(40).0.to_contiguous();
            let object_key = ObjectKey(u64::from_le_bytes(fixed[6..14].try_into().expect("8")));
            let trace_id = u64::from_le_bytes(fixed[14..22].try_into().expect("8"));
            let parent_span = u64::from_le_bytes(fixed[22..30].try_into().expect("8"));
            let deadline = u64::from_le_bytes(fixed[30..38].try_into().expect("8"));
            let op_len = u16::from_le_bytes(fixed[38..40].try_into().expect("2")) as usize;
            if total < 40 + op_len {
                return Err(OrbError::Marshal("ESIOP operation overruns frame".into()));
            }
            let head = frame.split_at(40 + op_len).0.to_contiguous();
            let operation = std::str::from_utf8(&head[40..40 + op_len])
                .map_err(|_| OrbError::Marshal("ESIOP operation is not UTF-8".into()))?
                .to_string();
            let mut body_start = 40 + op_len;
            while !body_start.is_multiple_of(8) {
                body_start += 1;
            }
            if body_start > total {
                return Err(OrbError::Marshal("ESIOP padding overruns frame".into()));
            }
            Ok(GiopMessage::Request {
                request_id,
                response_expected: msg_type == TYPE_REQUEST,
                object_key,
                operation,
                trace_id,
                parent_span,
                deadline,
                body: frame.split_at(body_start).1,
            })
        }
        TYPE_REPLY => {
            if total < 8 {
                return Err(OrbError::Marshal("ESIOP reply too short".into()));
            }
            let head = frame.split_at(8).0.to_contiguous();
            let status = match head[6] {
                0 => ReplyStatus::NoException,
                1 => ReplyStatus::UserException,
                2 => ReplyStatus::SystemException,
                3 => ReplyStatus::Transient,
                4 => ReplyStatus::DeadlineExceeded,
                other => {
                    return Err(OrbError::Marshal(format!("bad ESIOP status {other}")))
                }
            };
            Ok(GiopMessage::Reply {
                request_id,
                status,
                body: frame.split_at(8).1,
            })
        }
        other => Err(OrbError::Marshal(format!("unknown ESIOP type {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdr::{CdrReader, CdrWriter};
    use crate::profile::MarshalStrategy;

    #[test]
    fn request_roundtrip_with_alignment() {
        let mut args = CdrWriter::new(MarshalStrategy::ZeroCopy);
        args.write_u64(0xdead_beef);
        args.write_octet_seq(Bytes::from(vec![7u8; 4096]));
        let frame = encode_request(
            9,
            true,
            ObjectKey(42),
            "density",
            0x1111,
            0x2222,
            0x3333,
            args.finish(),
        );
        assert!(is_esiop(frame.to_vec()[0]));
        match decode(&frame).unwrap() {
            GiopMessage::Request {
                request_id,
                response_expected,
                object_key,
                operation,
                trace_id,
                parent_span,
                deadline,
                body,
            } => {
                assert_eq!(request_id, 9);
                assert!(response_expected);
                assert_eq!(object_key, ObjectKey(42));
                assert_eq!(operation, "density");
                assert_eq!(trace_id, 0x1111);
                assert_eq!(parent_span, 0x2222);
                assert_eq!(deadline, 0x3333);
                let mut r = CdrReader::new(&body);
                assert_eq!(r.read_u64().unwrap(), 0xdead_beef);
                assert_eq!(r.read_octet_seq().unwrap(), Bytes::from(vec![7u8; 4096]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oneway_flag_and_reply_statuses() {
        let frame = encode_request(1, false, ObjectKey(1), "fire", 0, 0, 0, Payload::new());
        match decode(&frame).unwrap() {
            GiopMessage::Request {
                response_expected, ..
            } => assert!(!response_expected),
            other => panic!("{other:?}"),
        }
        for status in [
            ReplyStatus::NoException,
            ReplyStatus::UserException,
            ReplyStatus::SystemException,
            ReplyStatus::Transient,
            ReplyStatus::DeadlineExceeded,
        ] {
            let mut body = CdrWriter::new(MarshalStrategy::Copying);
            body.write_i32(5);
            let frame = encode_reply(7, status, body.finish());
            match decode(&frame).unwrap() {
                GiopMessage::Reply {
                    request_id,
                    status: got,
                    body,
                } => {
                    assert_eq!(request_id, 7);
                    assert_eq!(got, status);
                    let mut r = CdrReader::new(&body);
                    assert_eq!(r.read_i32().unwrap(), 5);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn esiop_header_is_smaller_than_giop() {
        let giop =
            crate::giop::encode_request(1, true, ObjectKey(1), "op", 0, 0, 0, Payload::new());
        let esiop = encode_request(1, true, ObjectKey(1), "op", 0, 0, 0, Payload::new());
        assert!(
            esiop.len() < giop.len(),
            "ESIOP head {} vs GIOP head {}",
            esiop.len(),
            giop.len()
        );
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(decode(&Payload::from_vec(vec![MAGIC])).is_err());
        assert!(decode(&Payload::from_vec(vec![0x47, 0, 0, 0, 0, 0])).is_err());
        assert!(decode(&Payload::from_vec(vec![MAGIC, 9, 0, 0, 0, 0, 0, 0])).is_err());
        // Truncated operation.
        let mut bad =
            encode_request(1, true, ObjectKey(1), "operation", 0, 0, 0, Payload::new()).to_vec();
        bad.truncate(42);
        assert!(decode(&Payload::from_vec(bad)).is_err());
    }
}
