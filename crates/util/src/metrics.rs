//! A process-global metrics registry: named counters and virtual-time
//! histograms.
//!
//! Spans ([`crate::span`]) feed per-layer latency histograms on every
//! span end; the fabric feeds `bytes.<fabric>` counters for bytes on the
//! wire; higher layers fold their own counters in (schedule-cache
//! hit/miss, recovery retries) when building a snapshot. Everything is
//! keyed by name and stored in `BTreeMap`s so a snapshot iterates in a
//! deterministic order — same-seed runs produce byte-identical dumps.
//!
//! Histogram buckets are powers of two over virtual nanoseconds: bucket
//! `i` counts observations `v` with `2^(i-1) <= v < 2^i` (bucket 0 is
//! `v == 0`). That is coarse but stable, which is what regression diffs
//! across bench snapshots need.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Number of histogram buckets: one per possible bit-length of a `u64`
/// observation, plus bucket 0 for zero.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket histogram over `u64` observations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[i]` counts observations of bit-length `i` (0 for zero).
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Non-empty buckets as `(bit_length, count)` pairs (compact dump
    /// form; most of the 65 buckets are empty in practice).
    pub fn occupied_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// A plain-value snapshot of the registry, comparable across runs.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold another snapshot's entries into this one (counters add,
    /// histograms merge bucket-wise).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            mine.count += h.count;
            mine.sum = mine.sum.saturating_add(h.sum);
            mine.min = mine.min.min(h.min);
            mine.max = mine.max.max(h.max);
            for (b, c) in h.buckets.iter().enumerate() {
                mine.buckets[b] += c;
            }
        }
    }

    /// Deterministic text rendering (one line per entry, sorted by name).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name}: count={} sum={} min={} max={} mean={:.1}\n",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean()
            ));
        }
        out
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

static REGISTRY: Mutex<Option<Inner>> = Mutex::new(None);

fn with_inner<R>(f: impl FnOnce(&mut Inner) -> R) -> R {
    let mut guard = REGISTRY.lock();
    f(guard.get_or_insert_with(Inner::default))
}

/// Add `delta` to the named counter (creating it at zero).
pub fn counter_add(name: &str, delta: u64) {
    with_inner(|inner| {
        if let Some(c) = inner.counters.get_mut(name) {
            *c += delta;
        } else {
            inner.counters.insert(name.to_string(), delta);
        }
    });
}

/// Record one observation into the named histogram.
pub fn observe(name: &str, value: u64) {
    with_inner(|inner| {
        if let Some(h) = inner.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            inner.histograms.insert(name.to_string(), h);
        }
    });
}

/// Snapshot the registry's current contents.
pub fn snapshot() -> MetricsSnapshot {
    let guard = REGISTRY.lock();
    match &*guard {
        None => MetricsSnapshot::default(),
        Some(inner) => MetricsSnapshot {
            counters: inner.counters.clone(),
            histograms: inner.histograms.clone(),
        },
    }
}

/// Snapshot with the process-global recovery counters folded in as
/// `recovery.*` counters — the retry/failover story next to the latency
/// story, in one dump.
pub fn snapshot_with_recovery() -> MetricsSnapshot {
    let mut snap = snapshot();
    let rec = crate::stats::global_recovery().snapshot();
    for (name, v) in [
        ("recovery.send_retries", rec.send_retries),
        ("recovery.connect_retries", rec.connect_retries),
        ("recovery.giop_retries", rec.giop_retries),
        ("recovery.route_failovers", rec.route_failovers),
        ("recovery.mapping_remaps", rec.mapping_remaps),
        ("recovery.corrupt_discards", rec.corrupt_discards),
        ("recovery.backoff_ns", rec.backoff_ns),
    ] {
        snap.counters.insert(name.to_string(), v);
    }
    snap
}

/// Drop every counter and histogram (tests use this for isolation).
pub fn clear() {
    *REGISTRY.lock() = None;
}

/// Swap the registry out (for the scoped test-isolation guard).
pub(crate) fn take() -> MetricsSnapshot {
    let mut guard = REGISTRY.lock();
    match guard.take() {
        None => MetricsSnapshot::default(),
        Some(inner) => MetricsSnapshot {
            counters: inner.counters,
            histograms: inner.histograms,
        },
    }
}

/// Restore a previously taken registry state.
pub(crate) fn restore(snap: MetricsSnapshot) {
    *REGISTRY.lock() = Some(Inner {
        counters: snap.counters,
        histograms: snap.histograms,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_histograms_and_merge() {
        let _iso = crate::trace::isolated();
        counter_add("bytes.myrinet", 100);
        counter_add("bytes.myrinet", 28);
        observe("latency.orb.giop", 0);
        observe("latency.orb.giop", 5);
        observe("latency.orb.giop", 1 << 20);
        let snap = snapshot();
        assert_eq!(snap.counter("bytes.myrinet"), 128);
        assert_eq!(snap.counter("missing"), 0);
        let h = snap.histogram("latency.orb.giop").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 5 + (1 << 20));
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1 << 20);
        // Bucket 0 (zero), bit-length 3 (value 5), bit-length 21 (2^20).
        assert_eq!(h.occupied_buckets(), vec![(0, 1), (3, 1), (21, 1)]);

        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.counter("bytes.myrinet"), 256);
        assert_eq!(merged.histogram("latency.orb.giop").unwrap().count, 6);

        let rendered = snap.render();
        assert!(rendered.contains("counter bytes.myrinet = 128"));
        assert!(rendered.contains("histogram latency.orb.giop"));
    }

    #[test]
    fn recovery_counters_fold_into_snapshot() {
        let _iso = crate::trace::isolated();
        let snap = snapshot_with_recovery();
        assert!(snap.counters.contains_key("recovery.giop_retries"));
        assert!(snap.counters.contains_key("recovery.backoff_ns"));
    }

    #[test]
    fn clear_resets_everything() {
        let _iso = crate::trace::isolated();
        counter_add("x", 1);
        observe("y", 2);
        clear();
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
