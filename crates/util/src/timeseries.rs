//! Virtual-time telemetry windows: the flight recorder's memory.
//!
//! The metrics registry ([`crate::metrics`]) answers *how many* sheds,
//! breaker trips, steals and retries a run saw; it cannot answer *when*.
//! This module folds the same observations into fixed-width virtual-time
//! windows kept in a bounded ring, so a chaos campaign or a 100k-node
//! world can be read as a timeline: window 17 is where the breaker
//! opened, windows 20..24 are where the shed storm happened.
//!
//! Design constraints, in order:
//!
//! * **Bounded memory.** Each series keeps at most [`SeriesConfig::windows`]
//!   windows; recording past the ring's end slides the base forward and
//!   evicts the oldest windows (counted in `evicted_windows`); recording
//!   *behind* the ring's base is dropped and counted in `dropped_samples`.
//!   Nothing here grows with run length.
//! * **Determinism.** Same-seed runs stamp the same virtual times, so the
//!   whole registry renders byte-identically — the engine-equivalence
//!   suite compares these renders across progress engines (after
//!   stripping the `sched.*` series, whose steal timing is a property of
//!   host thread scheduling, not of the seed).
//! * **Cheap recording.** One mutex, one `BTreeMap` lookup, O(1) fold.
//!   Hot paths record at batch granularity (the world scheduler folds 32
//!   events per sample), cold paths (sheds, trips, retries) record freely.
//!
//! Like the metrics registry, the whole state participates in
//! [`crate::trace::isolated`] so concurrently-running tests cannot
//! observe each other's windows.

use crate::simtime::Vt;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Default window width: 1 ms of virtual time. Wide enough that a
/// chaos failover run (hundreds of ms of vt) spans a readable number of
/// windows, narrow enough that a shed storm and the breaker trip that
/// follows it land in different windows.
pub const DEFAULT_WINDOW_NS: u64 = 1_000_000;

/// Default ring depth: how many windows a series retains.
pub const DEFAULT_WINDOWS: usize = 64;

/// Per-registry configuration applied to series created after it is set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesConfig {
    /// Width of one window in virtual nanoseconds.
    pub window_ns: u64,
    /// Ring depth: windows retained per series.
    pub windows: usize,
}

impl Default for SeriesConfig {
    fn default() -> Self {
        SeriesConfig {
            window_ns: DEFAULT_WINDOW_NS,
            windows: DEFAULT_WINDOWS,
        }
    }
}

/// One folded window: count/sum/min/max plus power-of-two buckets keyed
/// by the observation's bit length (the same bucketing as
/// [`crate::metrics::Histogram`], stored sparsely — most windows see a
/// narrow value range).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Window {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: BTreeMap<u8, u64>,
}

impl Window {
    fn fold(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let bucket = (64 - v.leading_zeros()) as u8;
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// One named series: a ring of windows over virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Series {
    pub window_ns: u64,
    /// Window index (vt / window_ns) of `ring[0]`.
    pub base: u64,
    pub ring: Vec<Window>,
    /// Samples older than the retained ring, dropped on arrival.
    pub dropped_samples: u64,
    /// Non-empty windows slid out of the ring to make room.
    pub evicted_windows: u64,
    cap: usize,
}

impl Series {
    fn new(cfg: SeriesConfig) -> Self {
        Series {
            window_ns: cfg.window_ns.max(1),
            base: 0,
            ring: Vec::new(),
            dropped_samples: 0,
            evicted_windows: 0,
            cap: cfg.windows.max(1),
        }
    }

    fn record(&mut self, vt: Vt, value: u64) {
        let w = vt / self.window_ns;
        if self.ring.is_empty() {
            self.base = w;
        }
        if w < self.base {
            self.dropped_samples += 1;
            return;
        }
        let mut idx = (w - self.base) as usize;
        if idx >= self.cap {
            // Slide the ring forward so `w` becomes the newest window.
            let shift = idx - self.cap + 1;
            if shift >= self.ring.len() {
                // The jump clears everything currently retained.
                self.evicted_windows +=
                    self.ring.iter().filter(|win| !win.is_empty()).count() as u64;
                self.ring.clear();
                self.base = w;
            } else {
                self.evicted_windows += self
                    .ring
                    .drain(..shift)
                    .filter(|win| !win.is_empty())
                    .count() as u64;
                self.base += shift as u64;
            }
            idx = (w - self.base) as usize;
        }
        while self.ring.len() <= idx {
            self.ring.push(Window::default());
        }
        self.ring[idx].fold(value);
    }

    /// Non-empty windows as `(window_index, &Window)`, oldest first.
    pub fn occupied(&self) -> Vec<(u64, &Window)> {
        self.ring
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.is_empty())
            .map(|(i, w)| (self.base + i as u64, w))
            .collect()
    }

    /// Total observations folded into the retained windows.
    pub fn total_count(&self) -> u64 {
        self.ring.iter().map(|w| w.count).sum()
    }
}

/// A plain-value snapshot of every series, comparable across runs.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TimeSeriesSnapshot {
    pub series: BTreeMap<String, Series>,
}

impl TimeSeriesSnapshot {
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Deterministic text rendering: one line per series (sorted by
    /// name), listing only the non-empty windows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, s) in &self.series {
            out.push_str(&format!(
                "timeseries {name} window_ns={} dropped={} evicted={}:",
                s.window_ns, s.dropped_samples, s.evicted_windows
            ));
            for (idx, w) in s.occupied() {
                out.push_str(&format!(
                    " [{idx}]={}/{}min{}max{}",
                    w.count, w.sum, w.min, w.max
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[derive(Default)]
struct Inner {
    config: SeriesConfig,
    series: BTreeMap<String, Series>,
}

static REGISTRY: Mutex<Option<Inner>> = Mutex::new(None);

fn with_inner<R>(f: impl FnOnce(&mut Inner) -> R) -> R {
    let mut guard = REGISTRY.lock();
    f(guard.get_or_insert_with(Inner::default))
}

/// Set the window width/ring depth used by series created from now on.
/// Existing series keep their geometry (their windows would not be
/// comparable across a mid-run change).
pub fn configure(cfg: SeriesConfig) {
    with_inner(|inner| inner.config = cfg);
}

/// Fold one observation into the named series at virtual time `vt`.
pub fn record(name: &str, vt: Vt, value: u64) {
    with_inner(|inner| {
        if let Some(s) = inner.series.get_mut(name) {
            s.record(vt, value);
        } else {
            let mut s = Series::new(inner.config);
            s.record(vt, value);
            inner.series.insert(name.to_string(), s);
        }
    });
}

/// Count one event (value 1) in the named series at virtual time `vt`.
pub fn bump(name: &str, vt: Vt) {
    record(name, vt, 1);
}

/// Snapshot the registry's current contents.
pub fn snapshot() -> TimeSeriesSnapshot {
    let guard = REGISTRY.lock();
    match &*guard {
        None => TimeSeriesSnapshot::default(),
        Some(inner) => TimeSeriesSnapshot {
            series: inner.series.clone(),
        },
    }
}

/// Drop every series (tests use this for isolation).
pub fn clear() {
    *REGISTRY.lock() = None;
}

/// Registry state moved out by the scoped test-isolation guard.
#[derive(Default)]
pub(crate) struct TsState {
    config: SeriesConfig,
    series: BTreeMap<String, Series>,
}

/// Swap the registry out (for the scoped test-isolation guard).
pub(crate) fn take() -> TsState {
    match REGISTRY.lock().take() {
        None => TsState::default(),
        Some(inner) => TsState {
            config: inner.config,
            series: inner.series,
        },
    }
}

/// Restore a previously taken registry state.
pub(crate) fn restore(state: TsState) {
    *REGISTRY.lock() = Some(Inner {
        config: state.config,
        series: state.series,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_fold_by_virtual_time() {
        let _iso = crate::trace::isolated();
        configure(SeriesConfig {
            window_ns: 100,
            windows: 4,
        });
        record("x", 10, 5);
        record("x", 20, 7);
        record("x", 150, 1);
        let snap = snapshot();
        let s = snap.series("x").unwrap();
        assert_eq!(s.base, 0);
        let occ = s.occupied();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].0, 0);
        assert_eq!(occ[0].1.count, 2);
        assert_eq!(occ[0].1.sum, 12);
        assert_eq!(occ[0].1.min, 5);
        assert_eq!(occ[0].1.max, 7);
        assert_eq!(occ[1].0, 1);
        assert_eq!(occ[1].1.count, 1);
    }

    #[test]
    fn ring_slides_and_counts_evictions_and_drops() {
        let _iso = crate::trace::isolated();
        configure(SeriesConfig {
            window_ns: 100,
            windows: 4,
        });
        for w in 0..4 {
            record("s", w * 100, 1);
        }
        // Window 5 slides windows 0..=1 out (base becomes 2).
        record("s", 500, 1);
        let snap = snapshot();
        let s = snap.series("s").unwrap();
        assert_eq!(s.base, 2);
        assert_eq!(s.evicted_windows, 2);
        assert_eq!(s.dropped_samples, 0);
        // A sample behind the base drops.
        record("s", 0, 1);
        let s2 = snapshot();
        assert_eq!(s2.series("s").unwrap().dropped_samples, 1);
        // A huge forward jump clears the whole ring.
        record("s", 1_000_000, 1);
        let s3 = snapshot();
        let s3 = s3.series("s").unwrap();
        assert_eq!(s3.base, 10_000);
        assert_eq!(s3.occupied().len(), 1);
    }

    #[test]
    fn memory_stays_bounded_and_render_is_deterministic() {
        let _iso = crate::trace::isolated();
        configure(SeriesConfig {
            window_ns: 10,
            windows: 8,
        });
        for vt in 0..10_000u64 {
            record("bounded", vt, vt % 17);
        }
        let snap = snapshot();
        let s = snap.series("bounded").unwrap();
        assert!(s.ring.len() <= 8);
        assert!(s.evicted_windows > 0);
        let r1 = snap.render();
        let r2 = snapshot().render();
        assert_eq!(r1, r2);
        assert!(r1.starts_with("timeseries bounded window_ns=10"));
    }

    #[test]
    fn isolation_guard_swaps_timeseries_state() {
        let outer = crate::trace::isolated();
        bump("outer.series", 42);
        {
            let _inner = crate::trace::isolated();
            assert!(snapshot().series.is_empty());
            bump("inner.series", 7);
            assert!(snapshot().series("inner.series").is_some());
        }
        assert!(snapshot().series("inner.series").is_none());
        assert!(snapshot().series("outer.series").is_some());
        drop(outer);
    }
}
