//! Lightweight event tracing.
//!
//! The PadicoTM layers log arbitration decisions (which fabric was selected,
//! which module was loaded, when a conflict was refused) so that tests and
//! the experiment harness can assert on *why* something happened, not only
//! on the outcome. A global ring buffer keeps the last N events; recording
//! is a few atomic ops plus one short critical section.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};

/// Severity / verbosity of a trace event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Fine-grained events (every message).
    Debug = 0,
    /// Normal operational events (module loaded, circuit built).
    Info = 1,
    /// Suspicious but recoverable situations.
    Warn = 2,
    /// Failures.
    Error = 3,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (global order of recording).
    pub seq: u64,
    pub level: Level,
    /// Subsystem tag, e.g. `"tm.arbitration"`.
    pub target: &'static str,
    pub message: String,
}

const RING_CAPACITY: usize = 4096;

struct Ring {
    events: Vec<Event>,
    write_pos: usize,
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static MIN_LEVEL: AtomicU8 = AtomicU8::new(1); // Info by default
static RING: Mutex<Option<Ring>> = Mutex::new(None);

/// Set the minimum level recorded by [`record`]. Events below it are
/// dropped cheaply (one atomic load).
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current minimum recorded level.
pub fn min_level() -> Level {
    match MIN_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Debug,
        1 => Level::Info,
        2 => Level::Warn,
        _ => Level::Error,
    }
}

/// Record an event in the global ring buffer.
pub fn record(level: Level, target: &'static str, message: String) {
    if (level as u8) < MIN_LEVEL.load(Ordering::Relaxed) {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut guard = RING.lock();
    let ring = guard.get_or_insert_with(|| Ring {
        events: Vec::with_capacity(RING_CAPACITY),
        write_pos: 0,
    });
    let ev = Event {
        seq,
        level,
        target,
        message,
    };
    if ring.events.len() < RING_CAPACITY {
        ring.events.push(ev);
    } else {
        let pos = ring.write_pos;
        ring.events[pos] = ev;
        ring.write_pos = (pos + 1) % RING_CAPACITY;
    }
}

/// Snapshot of all retained events, oldest first.
pub fn snapshot() -> Vec<Event> {
    let guard = RING.lock();
    match &*guard {
        None => Vec::new(),
        Some(ring) => {
            let mut out = Vec::with_capacity(ring.events.len());
            if ring.events.len() < RING_CAPACITY {
                out.extend(ring.events.iter().cloned());
            } else {
                out.extend(ring.events[ring.write_pos..].iter().cloned());
                out.extend(ring.events[..ring.write_pos].iter().cloned());
            }
            out
        }
    }
}

/// Retained events whose target starts with `prefix`, oldest first.
pub fn snapshot_target(prefix: &str) -> Vec<Event> {
    snapshot()
        .into_iter()
        .filter(|e| e.target.starts_with(prefix))
        .collect()
}

/// Drop all retained events (tests use this for isolation).
pub fn clear() {
    let mut guard = RING.lock();
    *guard = None;
}

/// Record an [`Level::Info`] event.
#[macro_export]
macro_rules! trace_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::trace::record($crate::trace::Level::Info, $target, format!($($arg)*))
    };
}

/// Record a [`Level::Debug`] event.
#[macro_export]
macro_rules! trace_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::trace::min_level() <= $crate::trace::Level::Debug {
            $crate::trace::record($crate::trace::Level::Debug, $target, format!($($arg)*))
        }
    };
}

/// Record a [`Level::Warn`] event.
#[macro_export]
macro_rules! trace_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::trace::record($crate::trace::Level::Warn, $target, format!($($arg)*))
    };
}

/// Record a [`Level::Error`] event.
#[macro_export]
macro_rules! trace_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::trace::record($crate::trace::Level::Error, $target, format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is global, so the tests here run in one #[test] body to avoid
    // interleaving with each other.
    #[test]
    fn record_snapshot_filter_clear() {
        clear();
        set_min_level(Level::Debug);
        record(Level::Info, "tm.arbitration", "selected myrinet".into());
        record(Level::Debug, "orb", "request id 1".into());
        record(Level::Warn, "tm.module", "module reloaded".into());

        let all = snapshot();
        assert!(all.len() >= 3);
        let tm_only = snapshot_target("tm.");
        assert_eq!(tm_only.len(), 2);
        assert!(tm_only[0].seq < tm_only[1].seq, "oldest first");

        set_min_level(Level::Warn);
        record(Level::Info, "dropped", "should not appear".into());
        assert!(snapshot_target("dropped").is_empty());

        set_min_level(Level::Info);
        clear();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn level_ordering_and_display() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Warn.to_string(), "WARN");
    }
}
