//! Lightweight event tracing.
//!
//! The PadicoTM layers log arbitration decisions (which fabric was selected,
//! which module was loaded, when a conflict was refused) so that tests and
//! the experiment harness can assert on *why* something happened, not only
//! on the outcome. A global ring buffer keeps the last N events; recording
//! is a few atomic ops plus one short critical section.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};

/// Severity / verbosity of a trace event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Fine-grained events (every message).
    Debug = 0,
    /// Normal operational events (module loaded, circuit built).
    Info = 1,
    /// Suspicious but recoverable situations.
    Warn = 2,
    /// Failures.
    Error = 3,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (global order of recording).
    pub seq: u64,
    pub level: Level,
    /// Subsystem tag, e.g. `"tm.arbitration"`.
    pub target: &'static str,
    pub message: String,
}

const RING_CAPACITY: usize = 4096;

struct Ring {
    events: Vec<Event>,
    write_pos: usize,
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static MIN_LEVEL: AtomicU8 = AtomicU8::new(1); // Info by default
static RING: Mutex<Option<Ring>> = Mutex::new(None);

/// Set the minimum level recorded by [`record`]. Events below it are
/// dropped cheaply (one atomic load).
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current minimum recorded level.
pub fn min_level() -> Level {
    match MIN_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Debug,
        1 => Level::Info,
        2 => Level::Warn,
        _ => Level::Error,
    }
}

/// Record an event in the global ring buffer.
pub fn record(level: Level, target: &'static str, message: String) {
    if (level as u8) < MIN_LEVEL.load(Ordering::Relaxed) {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut guard = RING.lock();
    let ring = guard.get_or_insert_with(|| Ring {
        events: Vec::with_capacity(RING_CAPACITY),
        write_pos: 0,
    });
    let ev = Event {
        seq,
        level,
        target,
        message,
    };
    if ring.events.len() < RING_CAPACITY {
        ring.events.push(ev);
    } else {
        let pos = ring.write_pos;
        ring.events[pos] = ev;
        ring.write_pos = (pos + 1) % RING_CAPACITY;
    }
}

/// Snapshot of all retained events, oldest first.
pub fn snapshot() -> Vec<Event> {
    let guard = RING.lock();
    match &*guard {
        None => Vec::new(),
        Some(ring) => {
            let mut out = Vec::with_capacity(ring.events.len());
            if ring.events.len() < RING_CAPACITY {
                out.extend(ring.events.iter().cloned());
            } else {
                out.extend(ring.events[ring.write_pos..].iter().cloned());
                out.extend(ring.events[..ring.write_pos].iter().cloned());
            }
            out
        }
    }
}

/// Retained events whose target starts with `prefix`, oldest first.
pub fn snapshot_target(prefix: &str) -> Vec<Event> {
    snapshot()
        .into_iter()
        .filter(|e| e.target.starts_with(prefix))
        .collect()
}

/// Drop all retained events (tests use this for isolation).
pub fn clear() {
    let mut guard = RING.lock();
    *guard = None;
}

static ISOLATION: Mutex<()> = Mutex::new(());

thread_local! {
    // Nesting depth of isolation scopes on this thread; only the
    // outermost scope takes the serialization lock (the shim's Mutex is
    // not reentrant).
    static ISO_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Scoped isolation for every piece of global observability state: the
/// trace ring, the minimum level, the span buffers, the span-sampling
/// policy, the metrics registry and the timeseries registry. Taking the
/// guard serializes against guards on other threads (so
/// concurrently-running tests cannot interleave), swaps all state out
/// to a clean slate, and restores the captured state on drop — the
/// surrounding process never observes the scope's events. Nesting on one
/// thread is allowed; drop guards in LIFO order.
pub struct Isolated {
    _serial: Option<parking_lot::MutexGuard<'static, ()>>,
    ring: Option<Ring>,
    min_level: Level,
    sampling: crate::span::TraceSampling,
    spans: Vec<crate::span::Span>,
    metrics: crate::metrics::MetricsSnapshot,
    timeseries: crate::timeseries::TsState,
}

/// Enter an isolated observability scope (see [`Isolated`]).
pub fn isolated() -> Isolated {
    let serial = ISO_DEPTH.with(|d| {
        let depth = d.get();
        let serial = if depth == 0 {
            Some(ISOLATION.lock())
        } else {
            None
        };
        d.set(depth + 1);
        serial
    });
    let ring = RING.lock().take();
    let prev_level = min_level();
    set_min_level(Level::Info);
    let prev_sampling = crate::span::sampling();
    crate::span::set_sampling(crate::span::TraceSampling::Always);
    Isolated {
        _serial: serial,
        ring,
        min_level: prev_level,
        sampling: prev_sampling,
        spans: crate::span::take(),
        metrics: crate::metrics::take(),
        timeseries: crate::timeseries::take(),
    }
}

impl Drop for Isolated {
    fn drop(&mut self) {
        *RING.lock() = self.ring.take();
        set_min_level(self.min_level);
        crate::span::set_sampling(self.sampling);
        crate::span::restore(std::mem::take(&mut self.spans));
        crate::metrics::restore(std::mem::take(&mut self.metrics));
        crate::timeseries::restore(std::mem::take(&mut self.timeseries));
        ISO_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Record an [`Level::Info`] event. The format arguments are only
/// evaluated when the level clears the current minimum.
#[macro_export]
macro_rules! trace_info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::trace::min_level() <= $crate::trace::Level::Info {
            $crate::trace::record($crate::trace::Level::Info, $target, format!($($arg)*))
        }
    };
}

/// Record a [`Level::Debug`] event.
#[macro_export]
macro_rules! trace_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::trace::min_level() <= $crate::trace::Level::Debug {
            $crate::trace::record($crate::trace::Level::Debug, $target, format!($($arg)*))
        }
    };
}

/// Record a [`Level::Warn`] event. Format arguments are lazily
/// evaluated, as in [`trace_info!`].
#[macro_export]
macro_rules! trace_warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::trace::min_level() <= $crate::trace::Level::Warn {
            $crate::trace::record($crate::trace::Level::Warn, $target, format!($($arg)*))
        }
    };
}

/// Record a [`Level::Error`] event. Format arguments are lazily
/// evaluated, as in [`trace_info!`].
#[macro_export]
macro_rules! trace_error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::trace::min_level() <= $crate::trace::Level::Error {
            $crate::trace::record($crate::trace::Level::Error, $target, format!($($arg)*))
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_snapshot_filter_clear() {
        let _iso = isolated();
        set_min_level(Level::Debug);
        record(Level::Info, "tm.arbitration", "selected myrinet".into());
        record(Level::Debug, "orb", "request id 1".into());
        record(Level::Warn, "tm.module", "module reloaded".into());

        let all = snapshot();
        assert!(all.len() >= 3);
        let tm_only = snapshot_target("tm.");
        assert_eq!(tm_only.len(), 2);
        assert!(tm_only[0].seq < tm_only[1].seq, "oldest first");

        set_min_level(Level::Warn);
        record(Level::Info, "dropped", "should not appear".into());
        assert!(snapshot_target("dropped").is_empty());

        set_min_level(Level::Info);
        clear();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn filtered_macros_skip_format_arguments() {
        let _iso = isolated();
        set_min_level(Level::Error);
        let evaluated = std::cell::Cell::new(false);
        let probe = || {
            evaluated.set(true);
            "x"
        };
        trace_info!("lazy", "{}", probe());
        assert!(!evaluated.get(), "info format args must not run below min level");
        trace_warn!("lazy", "{}", probe());
        assert!(!evaluated.get(), "warn format args must not run below min level");
        set_min_level(Level::Info);
        trace_info!("lazy", "{}", probe());
        assert!(evaluated.get(), "info format args run once the level clears");
        assert_eq!(snapshot_target("lazy").len(), 1);
    }

    #[test]
    fn isolation_guard_captures_and_restores() {
        let outer = isolated();
        record(Level::Info, "outer", "before".into());
        set_min_level(Level::Warn);
        {
            let _inner = isolated();
            // Clean slate inside the scope, default level restored.
            assert!(snapshot().is_empty());
            assert_eq!(min_level(), Level::Info);
            record(Level::Info, "inner", "scoped".into());
            assert_eq!(snapshot_target("inner").len(), 1);
        }
        // Inner events gone, outer state back (including the level).
        assert!(snapshot_target("inner").is_empty());
        assert_eq!(snapshot_target("outer").len(), 1);
        assert_eq!(min_level(), Level::Warn);
        drop(outer);
    }

    #[test]
    fn level_ordering_and_display() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Warn.to_string(), "WARN");
    }
}
