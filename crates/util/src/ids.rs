//! Typed identifiers used across the workspace.
//!
//! Grid nodes, fabrics, logical channels and components are all identified
//! by small integers at the wire level; these newtypes keep them from being
//! mixed up while costing nothing at runtime.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of a grid node (a simulated machine / logical process).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identity of one fabric instance in a topology (e.g. "the Myrinet SAN of
/// cluster A"). Distinct from the fabric *kind*.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FabricId(pub u32);

impl fmt::Display for FabricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fabric{}", self.0)
    }
}

/// A logical multiplexed channel inside the arbitration layer.
///
/// Channels are how PadicoTM lets several middleware systems share one
/// network endpoint without seeing each other's traffic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ChannelId(pub u64);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Process-wide unique id generator (channel ids, request ids, object keys).
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(1),
        }
    }

    /// Allocate the next id; never returns the same value twice and never 0,
    /// so 0 can serve as a sentinel.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(FabricId(1).to_string(), "fabric1");
        assert_eq!(ChannelId(9).to_string(), "ch9");
    }

    #[test]
    fn idgen_never_repeats_or_returns_zero() {
        let g = Arc::new(IdGen::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let g = Arc::clone(&g);
            handles.push(thread::spawn(move || {
                (0..500).map(|_| g.next()).collect::<Vec<u64>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert_ne!(id, 0);
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 2000);
    }
}
