//! # padico-util
//!
//! Foundation utilities shared by every Padico crate:
//!
//! * [`simtime`] — the deterministic virtual-time substrate. All experiment
//!   figures in the paper are reproduced in virtual time so that the *shape*
//!   of the results (who wins, by what factor, where crossovers fall) is a
//!   function of the modelled mechanisms, not of the host machine.
//! * [`trace`] — a lightweight, lock-cheap event tracer used by the runtime
//!   layers (arbitration decisions, module loads, fabric selection).
//! * [`span`] — causally-linked, virtual-time-stamped spans with cross-node
//!   context propagation, a critical-path analyzer and a Chrome-trace
//!   (Perfetto) exporter.
//! * [`metrics`] — a process-global registry of named counters and
//!   virtual-time histograms (per-layer latency, bytes on the wire).
//! * [`timeseries`] — the flight recorder's windowed view of the same
//!   observations: counters/histograms folded into fixed-width
//!   virtual-time windows in a bounded ring, so campaigns show *when*
//!   sheds, breaker trips, steals and retries happened.
//! * [`stats`] — small statistics helpers for the benchmark harness
//!   (mean, percentiles, throughput conversion).
//! * [`xml`] — a minimal XML parser/writer. CCM deployment descriptors are
//!   XML documents (OSD/CAD vocabularies); no XML crate is on the allowed
//!   dependency list, so we implement the subset we need.
//! * [`rng`] — seeded deterministic RNG plumbing for workload generators.
//! * [`ids`] — small typed identifier helpers used across the workspace.

pub mod ids;
pub mod metrics;
pub mod rng;
pub mod simtime;
pub mod span;
pub mod stats;
pub mod timeseries;
pub mod trace;
pub mod xml;

pub use simtime::{SimClock, Vt, VtDuration};
