//! Statistics helpers for the experiment harness.
//!
//! The paper reports latencies in microseconds and bandwidths in MB/s
//! (decimal megabytes, as networking papers of the era did). These helpers
//! keep the unit conversions in one place and provide the usual summary
//! statistics over repeated measurements.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Recovery bookkeeping: how much work the retry/failover machinery did.
///
/// One instance lives in each PadicoTM runtime (per-node counters, used by
/// the chaos tests to assert deterministic recovery); a process-global
/// aggregate (see [`global_recovery`]) is mirrored alongside so bench
/// reports can show recovery overhead next to latency without plumbing.
#[derive(Debug, Default)]
pub struct RecoveryStats {
    /// Stream/send operations retried after a retryable transport error.
    pub send_retries: AtomicU64,
    /// Connection handshakes retried (lost SYN/ACK).
    pub connect_retries: AtomicU64,
    /// GIOP requests re-issued by the ORB (idempotent retry path).
    pub giop_retries: AtomicU64,
    /// Route failovers: a VLink/Circuit re-selected onto another fabric.
    pub route_failovers: AtomicU64,
    /// SAN mappings re-established on demand by the arbitration layer.
    pub mapping_remaps: AtomicU64,
    /// Frames discarded as corrupt (CRC-style detection at delivery).
    pub corrupt_discards: AtomicU64,
    /// Virtual nanoseconds charged to backoff while recovering.
    pub backoff_ns: AtomicU64,
}

/// A plain-value snapshot of [`RecoveryStats`], comparable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoverySnapshot {
    pub send_retries: u64,
    pub connect_retries: u64,
    pub giop_retries: u64,
    pub route_failovers: u64,
    pub mapping_remaps: u64,
    pub corrupt_discards: u64,
    pub backoff_ns: u64,
}

impl RecoverySnapshot {
    /// Total retry-shaped events (the "bounded retries" number chaos
    /// tests assert on).
    pub fn total_retries(&self) -> u64 {
        self.send_retries + self.connect_retries + self.giop_retries
    }
}

impl RecoveryStats {
    pub fn new() -> RecoveryStats {
        RecoveryStats::default()
    }

    pub fn snapshot(&self) -> RecoverySnapshot {
        RecoverySnapshot {
            send_retries: self.send_retries.load(Ordering::Relaxed),
            connect_retries: self.connect_retries.load(Ordering::Relaxed),
            giop_retries: self.giop_retries.load(Ordering::Relaxed),
            route_failovers: self.route_failovers.load(Ordering::Relaxed),
            mapping_remaps: self.mapping_remaps.load(Ordering::Relaxed),
            corrupt_discards: self.corrupt_discards.load(Ordering::Relaxed),
            backoff_ns: self.backoff_ns.load(Ordering::Relaxed),
        }
    }
}

/// Process-wide aggregate recovery counters (for bench reports).
pub fn global_recovery() -> &'static RecoveryStats {
    static GLOBAL: OnceLock<RecoveryStats> = OnceLock::new();
    GLOBAL.get_or_init(RecoveryStats::new)
}

/// Summary of a set of scalar samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub median: f64,
    pub p95: f64,
    pub stddev: f64,
}

impl Summary {
    /// Compute a summary; returns `None` for an empty sample set.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Some(Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            stddev: var.sqrt(),
        })
    }
}

/// Percentile (0..=100) of an already-sorted slice using linear
/// interpolation between closest ranks.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&pct), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Convert a virtual duration in nanoseconds to microseconds.
#[inline]
pub fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Bandwidth in MB/s (decimal) for `bytes` moved in `ns` nanoseconds.
#[inline]
pub fn mb_per_s(bytes: usize, ns: u64) -> f64 {
    if ns == 0 {
        return f64::INFINITY;
    }
    bytes as f64 * 1_000.0 / ns as f64
}

/// The classic message-size sweep used in Figure 7: powers of two from
/// `min` to `max` inclusive (clamped to at least 1 byte).
pub fn size_sweep(min: usize, max: usize) -> Vec<usize> {
    assert!(min >= 1 && min <= max, "invalid sweep bounds");
    let mut out = Vec::new();
    let mut s = min;
    while s < max {
        out.push(s);
        s *= 2;
    }
    out.push(max);
    out
}

/// One row of a bandwidth curve: `(message_size, value)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    pub size: usize,
    pub value: f64,
}

/// A named measurement series (one curve of Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub name: String,
    pub points: Vec<CurvePoint>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, size: usize, value: f64) {
        self.points.push(CurvePoint { size, value });
    }

    /// Peak value across the series (useful for "peak bandwidth" claims).
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|p| p.value).fold(f64::MIN, f64::max)
    }

    /// Value at the exact size, if present.
    pub fn at(&self, size: usize) -> Option<f64> {
        self.points.iter().find(|p| p.size == size).map(|p| p.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 100.0), 40.0);
        assert!((percentile_sorted(&v, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_covers_bounds() {
        let s = size_sweep(32, 1 << 20);
        assert_eq!(*s.first().unwrap(), 32);
        assert_eq!(*s.last().unwrap(), 1 << 20);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sweep_with_non_power_of_two_max() {
        let s = size_sweep(8, 100);
        assert_eq!(s, vec![8, 16, 32, 64, 100]);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(ns_to_us(1_500), 1.5);
        // 240 MB/s: 240 bytes per microsecond.
        assert!((mb_per_s(240, 1_000) - 240.0).abs() < 1e-9);
        assert!(mb_per_s(1, 0).is_infinite());
    }

    #[test]
    fn recovery_snapshot_reflects_counters() {
        let r = RecoveryStats::new();
        r.giop_retries.fetch_add(2, Ordering::Relaxed);
        r.route_failovers.fetch_add(1, Ordering::Relaxed);
        r.backoff_ns.fetch_add(5_000, Ordering::Relaxed);
        let s = r.snapshot();
        assert_eq!(s.giop_retries, 2);
        assert_eq!(s.route_failovers, 1);
        assert_eq!(s.backoff_ns, 5_000);
        assert_eq!(s.total_retries(), 2);
        assert_eq!(s, r.snapshot(), "snapshot is a stable value type");
    }

    #[test]
    fn series_peak_and_at() {
        let mut s = Series::new("omniORB/Myrinet");
        s.push(32, 3.0);
        s.push(1 << 20, 240.0);
        assert_eq!(s.peak(), 240.0);
        assert_eq!(s.at(32), Some(3.0));
        assert_eq!(s.at(64), None);
    }
}
