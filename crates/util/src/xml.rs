//! Minimal XML parser and writer.
//!
//! The CCM deployment model describes software packages and assemblies with
//! XML vocabularies (OSD — Open Software Description — and the CAD assembly
//! descriptor). GridCCM additionally consumes an XML description of a
//! component's parallelism (Figure 5 of the paper). No XML crate is on the
//! allowed dependency list, so this module implements the small, strict
//! subset those descriptors need:
//!
//! * elements with attributes, nested elements and text content
//! * XML declaration (`<?xml ...?>`), comments, CDATA
//! * the five predefined entities (`&lt; &gt; &amp; &apos; &quot;`)
//!
//! It deliberately does **not** implement namespaces, DTDs, or processing
//! instructions beyond skipping them.

use std::fmt;

/// An XML element tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    pub name: String,
    pub attributes: Vec<(String, String)>,
    pub children: Vec<Element>,
    /// Concatenated text content directly under this element (trimmed).
    pub text: String,
}

impl Element {
    /// New empty element.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Builder-style attribute setter.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Builder-style child append.
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(child);
        self
    }

    /// Builder-style text setter.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Value of an attribute.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First child element with the given name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text of the first child with the given name, if any.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.find(name).map(|e| e.text.as_str())
    }

    /// Serialize to a compact XML string (with declaration).
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\"?>");
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        escape_into(&self.text, out);
        for c in &self.children {
            c.write_into(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

/// Parse error with byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete XML document and return its root element.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, pat: &str) -> Result<(), ParseError> {
        match find_from(self.bytes, self.pos, pat.as_bytes()) {
            Some(idx) => {
                self.pos = idx + pat.len();
                Ok(())
            }
            None => Err(self.err(&format!("unterminated construct, expected `{pat}`"))),
        }
    }

    /// Skip declaration, comments and whitespace before the root element.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!") {
                // DOCTYPE and friends: skip to the closing '>'.
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skip comments/whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut el = Element::new(name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected `>` after `/`"));
                    }
                    self.pos += 1;
                    return Ok(el); // self-closing
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected `=` in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if !matches!(quote, Some(b'"') | Some(b'\'')) {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    let q = quote.unwrap();
                    self.pos += 1;
                    let vstart = self.pos;
                    while let Some(c) = self.peek() {
                        if c == q {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(q) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[vstart..self.pos]).into_owned();
                    self.pos += 1;
                    el.attributes.push((key, unescape(&raw)));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }

        // Content: text, children, comments, CDATA, closing tag.
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unexpected end of input in element content")),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.parse_name()?;
                        if close != el.name {
                            return Err(self.err(&format!(
                                "mismatched closing tag: expected `</{}>`, found `</{}>`",
                                el.name, close
                            )));
                        }
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(self.err("expected `>` in closing tag"));
                        }
                        self.pos += 1;
                        el.text = unescape(text.trim());
                        return Ok(el);
                    } else if self.starts_with("<!--") {
                        self.skip_until("-->")?;
                    } else if self.starts_with("<![CDATA[") {
                        self.pos += "<![CDATA[".len();
                        let start = self.pos;
                        match find_from(self.bytes, self.pos, b"]]>") {
                            Some(idx) => {
                                text.push_str(&String::from_utf8_lossy(&self.bytes[start..idx]));
                                self.pos = idx + 3;
                            }
                            None => return Err(self.err("unterminated CDATA")),
                        }
                    } else if self.starts_with("<?") {
                        self.skip_until("?>")?;
                    } else {
                        el.children.push(self.parse_element()?);
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    text.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                }
            }
        }
    }
}

fn find_from(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| i + from)
}

fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let known = [
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&amp;", '&'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ];
        let mut matched = false;
        for (ent, ch) in known {
            if rest.starts_with(ent) {
                out.push(ch);
                rest = &rest[ent.len()..];
                matched = true;
                break;
            }
        }
        if !matched {
            // Unknown entity: keep the ampersand literally.
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_element() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.children.is_empty());
        assert!(e.text.is_empty());
    }

    #[test]
    fn parse_attributes_and_text() {
        let e = parse(r#"<port name="density" kind='facet'>matrix</port>"#).unwrap();
        assert_eq!(e.get_attr("name"), Some("density"));
        assert_eq!(e.get_attr("kind"), Some("facet"));
        assert_eq!(e.text, "matrix");
    }

    #[test]
    fn parse_nested_with_prolog_and_comments() {
        let doc = r#"<?xml version="1.0" encoding="UTF-8"?>
            <!-- assembly for the coupling example -->
            <assembly id="coupling">
                <component name="chemistry"><nodes>0 1</nodes></component>
                <component name="transport"/>
            </assembly>"#;
        let e = parse(doc).unwrap();
        assert_eq!(e.name, "assembly");
        assert_eq!(e.get_attr("id"), Some("coupling"));
        assert_eq!(e.children.len(), 2);
        assert_eq!(e.child_text("component"), Some(""));
        assert_eq!(
            e.find("component").unwrap().child_text("nodes"),
            Some("0 1")
        );
        assert_eq!(e.find_all("component").count(), 2);
    }

    #[test]
    fn parse_entities_and_cdata() {
        let e = parse("<t a=\"x&amp;y\">&lt;hello&gt; <![CDATA[<raw & stuff>]]></t>").unwrap();
        assert_eq!(e.get_attr("a"), Some("x&y"));
        assert!(e.text.contains("<hello>"));
        assert!(e.text.contains("<raw & stuff>"));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn unterminated_rejected() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a attr=\"x>").is_err());
        assert!(parse("<!-- never closed").is_err());
    }

    #[test]
    fn roundtrip_builder_to_xml_to_tree() {
        let built = Element::new("parallel")
            .attr("interface", "IExample")
            .child(
                Element::new("argument")
                    .attr("index", "1")
                    .attr("distribution", "block"),
            )
            .child(Element::new("note").with_text("a < b & c"));
        let text = built.to_xml();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, built);
    }

    #[test]
    fn unknown_entity_kept_literal() {
        let e = parse("<a>&unknown; ok</a>").unwrap();
        assert_eq!(e.text, "&unknown; ok");
    }
}
