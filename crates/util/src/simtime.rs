//! Deterministic virtual time.
//!
//! The Padico grid is simulated inside one OS process: each grid *node* is a
//! logical process whose threads share a [`SimClock`]. Communication costs
//! (wire latency, line rate, marshalling copies, protocol overheads) are
//! *charged* to clocks instead of being waited out in wall time, so a full
//! bandwidth sweep that would take minutes on hardware completes in
//! milliseconds and is exactly reproducible.
//!
//! ## Model
//!
//! * Every node owns one clock. Threads of that node share it.
//! * CPU work advances the clock by `fetch_add` — concurrent threads of one
//!   node serialize their CPU charges, modelling a busy host CPU.
//! * Waiting for a message *merges* the clock forward to the message's
//!   arrival timestamp (`fetch_max`), the classic conservative
//!   virtual-time rule: `recv_time = max(local_now, arrival)`.
//! * Shared resources (a NIC, a link) are modelled by [`ResourceTimeline`]:
//!   a transmission *reserves* an interval on the timeline at the earliest
//!   virtual instant the resource is idle, no earlier than the requester's
//!   clock. Two concurrent senders therefore split the line rate, which is
//!   precisely the mechanism behind the paper's "CORBA and MPI at the same
//!   time each get 120 MB/s" result (§4.4) — while a request for an idle
//!   past window (made late in *wall-clock* order by a thread the OS
//!   scheduled behind its peers) backfills the gap instead of queueing
//!   behind reservations that live later on the virtual axis.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in virtual time, in nanoseconds since simulation start.
pub type Vt = u64;

/// A span of virtual time, in nanoseconds.
pub type VtDuration = u64;

/// Nanoseconds per microsecond, for readable constants.
pub const US: VtDuration = 1_000;
/// Nanoseconds per millisecond.
pub const MS: VtDuration = 1_000_000;
/// Nanoseconds per second.
pub const SEC: VtDuration = 1_000_000_000;

/// Convert a byte count and a rate in MB/s (decimal, as the paper reports)
/// into a virtual duration.
///
/// `1 MB/s = 1_000_000 bytes/s`, so `time_ns = bytes * 1000 / rate_mb_s`.
#[inline]
pub fn transfer_time(bytes: usize, rate_mb_per_s: f64) -> VtDuration {
    debug_assert!(rate_mb_per_s > 0.0, "rate must be positive");
    let ns = (bytes as f64) * 1_000.0 / rate_mb_per_s;
    ns.ceil() as VtDuration
}

/// Convert a byte count and a virtual duration into a rate in MB/s.
#[inline]
pub fn rate_mb_per_s(bytes: usize, dur: VtDuration) -> f64 {
    if dur == 0 {
        return f64::INFINITY;
    }
    (bytes as f64) * 1_000.0 / (dur as f64)
}

/// A shareable virtual clock.
///
/// Cloning is cheap and shares the underlying counter; use
/// [`SimClock::fork_independent`] to obtain a clock that starts at the same
/// instant but advances independently (used when spawning a fresh logical
/// process).
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// New clock starting at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// New clock starting at `t`.
    pub fn starting_at(t: Vt) -> Self {
        Self {
            now: Arc::new(AtomicU64::new(t)),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Vt {
        self.now.load(Ordering::Acquire)
    }

    /// Charge `d` nanoseconds of CPU/protocol work to this clock and return
    /// the new time.
    #[inline]
    pub fn advance(&self, d: VtDuration) -> Vt {
        self.now.fetch_add(d, Ordering::AcqRel) + d
    }

    /// Move the clock forward to at least `t` (no-op if already past) and
    /// return the resulting time. This is the virtual-time "wait until".
    #[inline]
    pub fn merge_to(&self, t: Vt) -> Vt {
        let mut cur = self.now.load(Ordering::Acquire);
        loop {
            if cur >= t {
                return cur;
            }
            match self
                .now
                .compare_exchange_weak(cur, t, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
    }

    /// A clock sharing this counter (same logical process).
    pub fn share(&self) -> SimClock {
        self.clone()
    }

    /// A new clock starting at this clock's current time but advancing
    /// independently afterwards.
    pub fn fork_independent(&self) -> SimClock {
        SimClock::starting_at(self.now())
    }
}

/// A serially-reusable resource on the virtual timeline (a NIC transmit
/// engine, a link, a DMA engine).
///
/// Each reservation is granted the *earliest idle interval* on the virtual
/// axis that starts no earlier than the requester's `not_before`. Saturated
/// concurrent use packs intervals back to back, sharing the resource's rate
/// fairly — the behaviour the arbitration layer is designed to provide —
/// while a requester whose thread the OS scheduled late still lands in the
/// idle window its virtual clock entitles it to, keeping granted times
/// independent of wall-clock interleaving.
#[derive(Debug, Default)]
pub struct ResourceTimeline {
    /// Sorted, disjoint, non-touching busy intervals `[start, end)`.
    busy: Mutex<Vec<(Vt, Vt)>>,
}

/// The interval granted by [`ResourceTimeline::reserve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the resource actually started serving this request.
    pub start: Vt,
    /// When the resource becomes free again (start + duration).
    pub end: Vt,
}

impl ResourceTimeline {
    /// New timeline, free from time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the resource for `dur` starting no earlier than `not_before`,
    /// in the earliest idle interval that fits.
    ///
    /// Returns the granted interval. The caller typically merges its clock
    /// to `end` (the request occupies the caller until the resource is done,
    /// e.g. a blocking DMA) or forwards `end` as a message timestamp.
    pub fn reserve(&self, not_before: Vt, dur: VtDuration) -> Reservation {
        if dur == 0 {
            // Zero-length use never occupies the resource; it starts (and
            // ends) at the first instant the resource is idle.
            let start = self.next_idle(not_before);
            return Reservation { start, end: start };
        }
        let mut busy = self.busy.lock();
        let mut start = not_before;
        let mut at = busy.len();
        for (i, &(s, e)) in busy.iter().enumerate() {
            if start + dur <= s {
                at = i;
                break;
            }
            start = start.max(e);
        }
        let end = start + dur;
        // Insert, coalescing with a touching predecessor and/or successor so
        // the list stays short under back-to-back packing.
        let merge_prev = at > 0 && busy[at - 1].1 == start;
        let merge_next = at < busy.len() && busy[at].0 == end;
        match (merge_prev, merge_next) {
            (true, true) => {
                busy[at - 1].1 = busy[at].1;
                busy.remove(at);
            }
            (true, false) => busy[at - 1].1 = end,
            (false, true) => busy[at].0 = start,
            (false, false) => busy.insert(at, (start, end)),
        }
        Reservation { start, end }
    }

    /// First instant at or after `t` at which the resource is idle.
    pub fn next_idle(&self, t: Vt) -> Vt {
        let busy = self.busy.lock();
        let mut at = t;
        for &(s, e) in busy.iter() {
            if at < s {
                break;
            }
            at = at.max(e);
        }
        at
    }

    /// The time after which the resource is permanently free (end of the
    /// last reservation).
    pub fn horizon(&self) -> Vt {
        self.busy.lock().last().map_or(0, |&(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.now(), 10);
        assert_eq!(c.advance(5), 15);
    }

    #[test]
    fn merge_only_moves_forward() {
        let c = SimClock::starting_at(100);
        assert_eq!(c.merge_to(50), 100, "merge to the past is a no-op");
        assert_eq!(c.merge_to(100), 100);
        assert_eq!(c.merge_to(250), 250);
        assert_eq!(c.now(), 250);
    }

    #[test]
    fn shared_clocks_see_each_other() {
        let a = SimClock::new();
        let b = a.share();
        a.advance(7);
        assert_eq!(b.now(), 7);
        b.merge_to(30);
        assert_eq!(a.now(), 30);
    }

    #[test]
    fn forked_clock_is_independent() {
        let a = SimClock::starting_at(40);
        let b = a.fork_independent();
        assert_eq!(b.now(), 40);
        a.advance(10);
        assert_eq!(b.now(), 40);
        b.advance(1);
        assert_eq!(a.now(), 50);
    }

    #[test]
    fn transfer_time_round_trips_rate() {
        // 1 MiB at 250 MB/s ≈ 4.19 ms
        let d = transfer_time(1 << 20, 250.0);
        let r = rate_mb_per_s(1 << 20, d);
        assert!((r - 250.0).abs() < 0.5, "rate {r} should be ~250");
    }

    #[test]
    fn transfer_time_zero_bytes_is_zero() {
        assert_eq!(transfer_time(0, 100.0), 0);
        assert!(rate_mb_per_s(1024, 0).is_infinite());
    }

    #[test]
    fn timeline_serializes_reservations() {
        let t = ResourceTimeline::new();
        let r1 = t.reserve(0, 100);
        assert_eq!(r1, Reservation { start: 0, end: 100 });
        // A request issued "at time 10" must wait for the first to finish.
        let r2 = t.reserve(10, 50);
        assert_eq!(
            r2,
            Reservation {
                start: 100,
                end: 150
            }
        );
        // A request after the horizon starts immediately.
        let r3 = t.reserve(1000, 5);
        assert_eq!(
            r3,
            Reservation {
                start: 1000,
                end: 1005
            }
        );
        assert_eq!(t.horizon(), 1005);
    }

    #[test]
    fn timeline_backfills_idle_gaps() {
        let t = ResourceTimeline::new();
        // A fast peer raced ahead in wall-clock and reserved a future slot.
        let r1 = t.reserve(1_000, 5);
        assert_eq!(
            r1,
            Reservation {
                start: 1_000,
                end: 1_005
            }
        );
        // A request for an idle earlier window, issued later in call order,
        // must land there — not queue behind the future reservation.
        let r2 = t.reserve(0, 100);
        assert_eq!(r2, Reservation { start: 0, end: 100 });
        // A request too large for the remaining gap skips past it.
        let r3 = t.reserve(0, 1_000);
        assert_eq!(r3.start, 1_005);
        // Exact-fit into a gap coalesces the neighbours.
        let r4 = t.reserve(100, 900);
        assert_eq!(
            r4,
            Reservation {
                start: 100,
                end: 1_000
            }
        );
        assert_eq!(t.horizon(), 2_005);
        assert_eq!(t.next_idle(0), 2_005);
    }

    #[test]
    fn timeline_shares_rate_between_concurrent_users() {
        // Two threads each reserve 100 slots of duration 10 starting from 0.
        // Whatever the interleaving, the total busy time is 2000 and each
        // thread's last reservation ends no earlier than its fair share.
        let t = Arc::new(ResourceTimeline::new());
        let mut handles = vec![];
        for _ in 0..2 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                let mut last = 0;
                for _ in 0..100 {
                    last = t.reserve(0, 10).end;
                }
                last
            }));
        }
        let ends: Vec<Vt> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(t.horizon(), 2000, "total service time is conserved");
        for e in ends {
            assert!(e >= 1000, "each user gets at most half the rate: {e}");
        }
    }

    #[test]
    fn concurrent_advances_are_all_accounted() {
        let c = SimClock::new();
        let mut handles = vec![];
        for _ in 0..4 {
            let c = c.share();
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), 4 * 1000 * 3);
    }
}
