//! Causally-linked spans over virtual time.
//!
//! A [`Span`] records one timed piece of work: a trace id (shared by the
//! whole causal tree), its own deterministic span id, its parent's span
//! id, the node it ran on, a layer tag (`ccm.invoke`, `orb.giop`,
//! `tm.vlink`, `fabric.link`, …) and start/end stamps from the node's
//! [`SimClock`]. Spans from every node land in per-node buffers merged
//! (and canonically sorted) on snapshot, so one GridCCM parallel
//! invocation yields a single connected tree spanning client ranks,
//! redistribution, the ORB, VLink and the fabric — including retry spans
//! linked to the attempt they replaced via `retry_of`.
//!
//! ## Determinism
//!
//! Span ids are *content-derived* (FNV-1a over trace id, parent id,
//! layer and name), never allocated from a global counter: two same-seed
//! runs produce byte-identical trees as long as sibling spans carry
//! distinct names (callers embed the rank / attempt / round number in the
//! name for exactly this reason).
//!
//! ## Context propagation
//!
//! The current `(trace_id, span_id)` pair lives in a thread-local;
//! [`child`] reads it implicitly, [`current`] extracts it for shipping
//! across threads or the wire, and [`adopt`] installs a received context
//! (the ORB does this on the server side of every traced request).
//! Recording is *opt-in by causality*: with no ambient context, [`child`]
//! returns a disabled guard and records nothing, so untraced traffic
//! (warm-ups, MPI, background chatter) stays out of the buffers.

use crate::simtime::{SimClock, Vt, VtDuration};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};

/// Head-based trace sampling policy: decided once per trace at
/// [`root`] time from a hash of the trace id, so the whole causal tree
/// — children, remote dispatches, retries — is kept or skipped as a
/// unit (a skipped root installs no ambient context, so children come
/// up disabled and the wire carries no context to adopt). The hash is a
/// pure function of the trace id, which is itself deterministic, so two
/// same-seed runs sample the identical set of traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TraceSampling {
    /// Record every trace (the default; what every test relies on).
    #[default]
    Always,
    /// Record roughly one trace in `n`, selected by trace-id hash.
    /// `SampleEvery(0)` and `SampleEvery(1)` behave like [`Always`].
    SampleEvery(u32),
}

static SAMPLE_N: AtomicU32 = AtomicU32::new(0);

/// Install the process-global sampling policy (the TM applies
/// `TmConfig::trace_sampling` here at boot). [`crate::trace::isolated`]
/// resets the policy to [`TraceSampling::Always`] inside its scope and
/// restores the previous policy on drop.
pub fn set_sampling(policy: TraceSampling) {
    let n = match policy {
        TraceSampling::Always => 0,
        TraceSampling::SampleEvery(n) => n,
    };
    SAMPLE_N.store(n, Ordering::Relaxed);
}

/// The current process-global sampling policy.
pub fn sampling() -> TraceSampling {
    match SAMPLE_N.load(Ordering::Relaxed) {
        0 => TraceSampling::Always,
        n => TraceSampling::SampleEvery(n),
    }
}

/// Whether a trace with this id is recorded under the current policy.
/// Exposed so workloads can pre-compute which of their deterministic
/// ids will be traced (the world bench keys per-hop instrumentation off
/// exactly this).
pub fn trace_sampled(trace_id: u64) -> bool {
    let n = SAMPLE_N.load(Ordering::Relaxed);
    if n <= 1 {
        return true;
    }
    // FNV-1a over the id bytes: cheap, stable, and decorrelated from
    // sequential id allocation patterns.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in trace_id.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h.is_multiple_of(u64::from(n))
}

/// One completed unit of traced work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Id of the whole causal tree (GridCCM uses the invocation id).
    pub trace_id: u64,
    /// Deterministic id of this span (content-derived, never 0).
    pub span_id: u64,
    /// Parent span id; 0 marks a root.
    pub parent: u64,
    /// Node the span executed on.
    pub node: u32,
    /// Layer tag, e.g. `"orb.giop"` — the unit of critical-path
    /// attribution.
    pub layer: &'static str,
    /// Sibling-unique human label (embeds rank/attempt/round numbers).
    pub name: String,
    /// Virtual start time on `node`'s clock.
    pub start: Vt,
    /// Virtual end time on `node`'s clock.
    pub end: Vt,
    /// Span id of the failed attempt this span replaced; 0 if none.
    pub retry_of: u64,
}

impl Span {
    pub fn duration(&self) -> VtDuration {
        self.end.saturating_sub(self.start)
    }
}

/// The propagated trace context: enough to parent a remote child.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanCtx {
    pub trace_id: u64,
    pub span_id: u64,
}

thread_local! {
    static CURRENT: Cell<Option<SpanCtx>> = const { Cell::new(None) };
}

/// The calling thread's current span context, if any. Ship this across
/// thread spawns (then [`adopt`] it) and across the wire (GIOP service
/// context, InvHeader).
pub fn current() -> Option<SpanCtx> {
    CURRENT.with(|c| c.get())
}

/// Install a received context as the thread's current one; restored on
/// drop. The ORB server side adopts the wire context before dispatching.
pub fn adopt(ctx: SpanCtx) -> CtxGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    CtxGuard { prev }
}

/// RAII restore of the previous thread-local context.
pub struct CtxGuard {
    prev: Option<SpanCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Deterministic span id: FNV-1a over the causal coordinates. Never 0
/// (0 means "no parent" / "no retry" on the wire).
pub fn derive_span_id(trace_id: u64, parent: u64, layer: &str, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(&trace_id.to_le_bytes());
    eat(&parent.to_le_bytes());
    eat(layer.as_bytes());
    eat(&[0]);
    eat(name.as_bytes());
    if h == 0 {
        1
    } else {
        h
    }
}

struct Open {
    clock: SimClock,
    prev: Option<SpanCtx>,
    explicit_end: Option<Vt>,
    detached: bool,
    span: Span,
}

/// RAII span: stamps `end` from the clock on drop, records the span into
/// its node's buffer, feeds the per-layer latency histogram, and restores
/// the previous thread-local context. A disabled guard (no ambient
/// context at [`child`] time) does nothing.
pub struct SpanGuard {
    open: Option<Open>,
}

impl SpanGuard {
    fn start(
        clock: &SimClock,
        node: u32,
        trace_id: u64,
        parent: u64,
        layer: &'static str,
        name: String,
        retry_of: u64,
    ) -> SpanGuard {
        let span_id = derive_span_id(trace_id, parent, layer, &name);
        let prev = CURRENT.with(|c| c.replace(Some(SpanCtx { trace_id, span_id })));
        SpanGuard {
            open: Some(Open {
                clock: clock.share(),
                prev,
                explicit_end: None,
                detached: false,
                span: Span {
                    trace_id,
                    span_id,
                    parent,
                    node,
                    layer,
                    name,
                    start: clock.now(),
                    end: 0,
                    retry_of,
                },
            }),
        }
    }

    /// This span's id (0 for a disabled guard).
    pub fn id(&self) -> u64 {
        self.open.as_ref().map_or(0, |o| o.span.span_id)
    }

    /// Whether the guard records anything.
    pub fn is_active(&self) -> bool {
        self.open.is_some()
    }

    /// Pin this span's end to a virtual-time stamp computed by the
    /// instrumented operation itself, instead of reading the shared node
    /// clock at drop time. Send paths need this for reproducible traces:
    /// a send's completion time is a pure function of the seed, but the
    /// node clock can be merged forward by a receive thread delivering
    /// the very frame this send put on the wire — whether that merge
    /// lands before or after the drop is a wall-clock race. Clamped to
    /// the span start on drop; no-op on a disabled guard.
    pub fn end_at(&mut self, t: Vt) {
        if let Some(open) = &mut self.open {
            open.explicit_end = Some(t);
        }
    }

    /// Restore the thread's previous context *now* while keeping the span
    /// itself open (it still records on drop). Two-phase callers need
    /// this: an attempt span opened at `submit()` time outlives the
    /// submitting scope and is dropped from `wait()` — possibly after
    /// other guards opened later have already closed — so the LIFO
    /// save/restore discipline of the thread-local stack cannot hold.
    /// Detaching hands the context back immediately; the deferred drop
    /// then only stamps `end` and records.
    pub fn detach(&mut self) {
        if let Some(open) = &mut self.open {
            if !open.detached {
                CURRENT.with(|c| c.set(open.prev));
                open.detached = true;
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut open) = self.open.take() else {
            return;
        };
        if !open.detached {
            CURRENT.with(|c| c.set(open.prev));
        }
        open.span.end = open
            .explicit_end
            .unwrap_or_else(|| open.clock.now())
            .max(open.span.start);
        let latency_name = format!("latency.{}", open.span.layer);
        crate::metrics::observe(&latency_name, open.span.duration());
        // The same observation windowed over virtual time: the flight
        // recorder's view of where in the run this layer was slow.
        crate::timeseries::record(&latency_name, open.span.end, open.span.duration());
        record(open.span);
    }
}

/// Open a root span: the start of a new causal tree. The caller supplies
/// the trace id (GridCCM uses its deterministic invocation id). Under a
/// [`TraceSampling::SampleEvery`] policy an unsampled trace id returns a
/// disabled guard: no context is installed, so the entire tree — local
/// children and remote dispatches alike — stays out of the buffers.
pub fn root(
    clock: &SimClock,
    node: u32,
    trace_id: u64,
    layer: &'static str,
    name: impl Into<String>,
) -> SpanGuard {
    if !trace_sampled(trace_id) {
        return SpanGuard { open: None };
    }
    SpanGuard::start(clock, node, trace_id, 0, layer, name.into(), 0)
}

/// Open a child of the thread's current span; disabled (records nothing)
/// when no context is ambient.
pub fn child(
    clock: &SimClock,
    node: u32,
    layer: &'static str,
    name: impl Into<String>,
) -> SpanGuard {
    child_retry(clock, node, layer, name, 0)
}

/// Like [`child`], additionally linking this span to the failed attempt
/// it replaces (`retry_of` = the previous attempt's span id).
pub fn child_retry(
    clock: &SimClock,
    node: u32,
    layer: &'static str,
    name: impl Into<String>,
    retry_of: u64,
) -> SpanGuard {
    match current() {
        Some(ctx) => SpanGuard::start(
            clock,
            node,
            ctx.trace_id,
            ctx.span_id,
            layer,
            name.into(),
            retry_of,
        ),
        None => SpanGuard { open: None },
    }
}

/// Per-node span cap: a runaway loop must not eat the heap; overflow is
/// counted, not silently ignored.
const NODE_CAP: usize = 1 << 16;

/// Process-wide span cap across *all* nodes. The per-node cap alone is
/// no bound at world scale — 100k nodes x 64k spans would be licence to
/// eat the heap node by node. Past this cap everything drops (and is
/// counted); turn on sampling instead of raising it.
const TOTAL_CAP: usize = 1 << 20;

#[derive(Default)]
struct Buffers {
    per_node: BTreeMap<u32, Vec<Span>>,
    total: usize,
    dropped: u64,
}

static BUFFERS: Mutex<Option<Buffers>> = Mutex::new(None);

fn record(span: Span) {
    let mut guard = BUFFERS.lock();
    let buffers = guard.get_or_insert_with(Buffers::default);
    if buffers.total >= TOTAL_CAP {
        buffers.dropped += 1;
        return;
    }
    let buf = buffers.per_node.entry(span.node).or_default();
    if buf.len() < NODE_CAP {
        buf.push(span);
        buffers.total += 1;
    } else {
        buffers.dropped += 1;
    }
}

/// Merge every node's buffer into one canonically-ordered list (sorted
/// by trace id, then start/end stamps, then span id — a total order
/// independent of which thread recorded first).
pub fn snapshot() -> Vec<Span> {
    let guard = BUFFERS.lock();
    let mut out: Vec<Span> = match &*guard {
        None => Vec::new(),
        Some(buffers) => buffers
            .per_node
            .values()
            .flat_map(|v| v.iter().cloned())
            .collect(),
    };
    drop(guard);
    out.sort_by(|a, b| {
        (a.trace_id, a.start, a.end, a.span_id).cmp(&(b.trace_id, b.start, b.end, b.span_id))
    });
    out
}

/// [`snapshot`] filtered to one causal tree. Tests use this to stay
/// immune to spans other concurrently-running scenarios record.
pub fn snapshot_trace(trace_id: u64) -> Vec<Span> {
    let mut out = snapshot();
    out.retain(|s| s.trace_id == trace_id);
    out
}

/// Spans recorded but dropped to the per-node or process-wide cap.
pub fn dropped() -> u64 {
    BUFFERS.lock().as_ref().map_or(0, |b| b.dropped)
}

/// Spans currently retained across every node buffer.
pub fn retained() -> u64 {
    BUFFERS.lock().as_ref().map_or(0, |b| b.total as u64)
}

/// Drop every recorded span.
pub fn clear() {
    *BUFFERS.lock() = None;
}

/// Swap all buffers out (for the scoped test-isolation guard).
pub(crate) fn take() -> Vec<Span> {
    let mut guard = BUFFERS.lock();
    match guard.take() {
        None => Vec::new(),
        Some(buffers) => buffers
            .per_node
            .into_values()
            .flatten()
            .collect(),
    }
}

/// Restore previously taken spans.
pub(crate) fn restore(spans: Vec<Span>) {
    let mut buffers = Buffers {
        total: spans.len(),
        ..Buffers::default()
    };
    for span in spans {
        buffers.per_node.entry(span.node).or_default().push(span);
    }
    *BUFFERS.lock() = Some(buffers);
}

/// One line per span in canonical order — byte-comparable across
/// same-seed runs (the chaos determinism suite diffs exactly this).
pub fn canonical_dump(spans: &[Span]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&format!(
            "trace={:016x} span={:016x} parent={:016x} retry_of={:016x} node={} \
             layer={} start={} end={} name={}\n",
            s.trace_id, s.span_id, s.parent, s.retry_of, s.node, s.layer, s.start, s.end, s.name
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Critical-path analysis
// ---------------------------------------------------------------------

/// Where the end-to-end virtual latency of one trace went, by layer.
/// The per-layer self-times sum *exactly* to `total` (the root span's
/// duration): every instant of the root's window is attributed to the
/// deepest span covering it, ties broken deterministically.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CriticalPath {
    pub total: VtDuration,
    /// Layer tag → virtual nanoseconds attributed as that layer's own
    /// work (time not covered by any child span).
    pub self_ns: BTreeMap<&'static str, u64>,
}

impl CriticalPath {
    /// Deterministic text table, widest share first.
    pub fn render(&self) -> String {
        let mut rows: Vec<(&'static str, u64)> =
            self.self_ns.iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
        let mut out = format!("critical path: {} ns total\n", self.total);
        for (layer, ns) in rows {
            let pct = if self.total == 0 {
                0.0
            } else {
                ns as f64 * 100.0 / self.total as f64
            };
            out.push_str(&format!("  {layer:<18} {ns:>12} ns  {pct:5.1}%\n"));
        }
        out
    }
}

/// Attribute the root span's duration to layers. Children are clipped to
/// their parent's window and processed in (start, end, id) order; the
/// window not covered by any child is the parent's self-time. Sibling
/// overlap (concurrent fan-out measured on per-node clocks) is resolved
/// by assigning each instant to the earliest-starting sibling, so the
/// invariant `sum(self_ns) == total` always holds.
pub fn critical_path(spans: &[Span], root_span_id: u64) -> Option<CriticalPath> {
    let root = spans.iter().find(|s| s.span_id == root_span_id)?;
    let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        if s.parent != 0 && s.span_id != root_span_id {
            children.entry(s.parent).or_default().push(s);
        }
    }
    for v in children.values_mut() {
        v.sort_by_key(|a| (a.start, a.end, a.span_id));
    }
    let mut out = CriticalPath {
        total: root.duration(),
        self_ns: BTreeMap::new(),
    };
    attribute(root, root.start, root.end, &children, &mut out.self_ns, 0);
    Some(out)
}

fn attribute(
    span: &Span,
    window_start: Vt,
    window_end: Vt,
    children: &BTreeMap<u64, Vec<&Span>>,
    self_ns: &mut BTreeMap<&'static str, u64>,
    depth: usize,
) {
    // A malformed tree (cycle via id collision) must not recurse forever.
    if depth > 64 {
        *self_ns.entry(span.layer).or_insert(0) += window_end.saturating_sub(window_start);
        return;
    }
    let mut cursor = window_start;
    if let Some(kids) = children.get(&span.span_id) {
        for child in kids {
            let s = child.start.max(cursor).min(window_end);
            let e = child.end.max(s).min(window_end);
            if e > s {
                *self_ns.entry(span.layer).or_insert(0) += s - cursor;
                attribute(child, s, e, children, self_ns, depth + 1);
                cursor = e;
            }
        }
    }
    *self_ns.entry(span.layer).or_insert(0) += window_end.saturating_sub(cursor);
}

// ---------------------------------------------------------------------
// Chrome-trace (Perfetto) export
// ---------------------------------------------------------------------

/// Minimal JSON string escaping shared by every trace exporter.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond fraction, as Chrome's `ts`/`dur` expect.
pub fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Build the individual Chrome trace events for a span set, one JSON
/// object per string. Exposed so other exporters (the flight recorder's
/// combined export in `padico-core::observability`) can merge these
/// with their own track sets before wrapping in a `traceEvents` array.
///
/// Spans with a non-zero duration become complete ("X") slices; spans
/// whose start equals their end — breaker transitions are the canonical
/// case — become thread-scoped instant ("i") events, because a
/// zero-width slice is invisible in the Perfetto UI.
pub fn chrome_trace_events(spans: &[Span]) -> Vec<String> {
    // Stable small integer per layer for the tid.
    let mut layers: Vec<&'static str> = spans.iter().map(|s| s.layer).collect();
    layers.sort_unstable();
    layers.dedup();
    let tid_of = |layer: &str| layers.iter().position(|l| *l == layer).unwrap_or(0) + 1;

    let mut events = Vec::new();
    // Name the processes and threads so the viewer shows node/layer names.
    let mut named: Vec<u32> = spans.iter().map(|s| s.node).collect();
    named.sort_unstable();
    named.dedup();
    for node in &named {
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{node},\"tid\":0,\
             \"args\":{{\"name\":\"node-{node}\"}}}}"
        ));
    }
    let mut thread_rows: Vec<(u32, &'static str)> =
        spans.iter().map(|s| (s.node, s.layer)).collect();
    thread_rows.sort_unstable();
    thread_rows.dedup();
    for (node, layer) in &thread_rows {
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{node},\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            tid_of(layer),
            json_escape(layer)
        ));
    }
    for s in spans {
        let args = format!(
            "\"args\":{{\"trace\":\"{:#x}\",\"span\":\"{:#x}\",\
             \"parent\":\"{:#x}\",\"retry_of\":\"{:#x}\"}}",
            s.trace_id, s.span_id, s.parent, s.retry_of
        );
        if s.duration() == 0 {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                 \"pid\":{},\"tid\":{},{args}}}",
                json_escape(&s.name),
                json_escape(s.layer),
                us(s.start),
                s.node,
                tid_of(s.layer),
            ));
        } else {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},{args}}}",
                json_escape(&s.name),
                json_escape(s.layer),
                us(s.start),
                us(s.duration()),
                s.node,
                tid_of(s.layer),
            ));
        }
    }
    events
}

/// Export spans as Chrome trace-event JSON (load in `chrome://tracing`
/// or <https://ui.perfetto.dev>): one complete ("X") event per span
/// (instant "i" for zero-duration transitions), `pid` = node, `tid` =
/// layer, with span/parent/retry ids in `args`.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}\n",
        chrome_trace_events(spans).join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simtime::SimClock;

    fn clock() -> SimClock {
        SimClock::new()
    }

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        let a = derive_span_id(1, 0, "ccm.invoke", "invoke:shift");
        let b = derive_span_id(1, 0, "ccm.invoke", "invoke:shift");
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_ne!(a, derive_span_id(1, 0, "ccm.invoke", "invoke:other"));
        assert_ne!(a, derive_span_id(2, 0, "ccm.invoke", "invoke:shift"));
    }

    #[test]
    fn guards_nest_and_propagate_context() {
        let _iso = crate::trace::isolated();
        let c = clock();
        assert!(current().is_none());
        {
            let root = root(&c, 0, 77, "ccm.invoke", "invoke:op");
            assert!(root.is_active());
            c.advance(100);
            let ctx = current().unwrap();
            assert_eq!(ctx.trace_id, 77);
            assert_eq!(ctx.span_id, root.id());
            {
                let kid = child(&c, 0, "orb.giop", "request:op:attempt1");
                assert!(kid.is_active());
                assert_eq!(current().unwrap().span_id, kid.id());
                c.advance(50);
            }
            // Context restored to the root after the child closes.
            assert_eq!(current().unwrap().span_id, root.id());
        }
        assert!(current().is_none());
        let spans = snapshot_trace(77);
        assert_eq!(spans.len(), 2);
        let root_span = spans.iter().find(|s| s.parent == 0).unwrap();
        let kid_span = spans.iter().find(|s| s.parent != 0).unwrap();
        assert_eq!(kid_span.parent, root_span.span_id);
        assert_eq!(root_span.duration(), 150);
        assert_eq!(kid_span.duration(), 50);
    }

    #[test]
    fn child_without_context_is_disabled() {
        let _iso = crate::trace::isolated();
        let c = clock();
        let g = child(&c, 0, "fabric.link", "tx");
        assert!(!g.is_active());
        assert_eq!(g.id(), 0);
        drop(g);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn adopt_installs_remote_context() {
        let _iso = crate::trace::isolated();
        let c = clock();
        let ctx = SpanCtx {
            trace_id: 9,
            span_id: 1234,
        };
        {
            let _a = adopt(ctx);
            let kid = child(&c, 3, "orb.dispatch", "dispatch:op:req5");
            assert!(kid.is_active());
            drop(kid);
        }
        assert!(current().is_none());
        let spans = snapshot_trace(9);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent, 1234);
        assert_eq!(spans[0].node, 3);
    }

    #[test]
    fn retry_links_to_replaced_attempt() {
        let _iso = crate::trace::isolated();
        let c = clock();
        let r = root(&c, 0, 5, "ccm.invoke", "invoke:x");
        let first_id;
        {
            let first = child(&c, 0, "orb.giop", "request:x:attempt1");
            first_id = first.id();
            c.advance(10);
        }
        {
            let _second = child_retry(&c, 0, "orb.giop", "request:x:attempt2", first_id);
            c.advance(10);
        }
        drop(r);
        let spans = snapshot_trace(5);
        let second = spans
            .iter()
            .find(|s| s.name.ends_with("attempt2"))
            .unwrap();
        assert_eq!(second.retry_of, first_id);
    }

    #[test]
    fn critical_path_sums_to_root_duration() {
        let _iso = crate::trace::isolated();
        let c = clock();
        let root_id;
        {
            let r = root(&c, 0, 11, "ccm.invoke", "invoke:op");
            root_id = r.id();
            c.advance(20); // ccm self
            {
                let _o = child(&c, 0, "orb.giop", "request:op:attempt1");
                c.advance(30); // orb self
                {
                    let _f = child(&c, 0, "fabric.link", "tx:myrinet");
                    c.advance(40);
                }
                c.advance(5); // orb self again
            }
            c.advance(5); // ccm tail
        }
        let spans = snapshot_trace(11);
        let cp = critical_path(&spans, root_id).unwrap();
        assert_eq!(cp.total, 100);
        assert_eq!(cp.self_ns.values().sum::<u64>(), cp.total);
        assert_eq!(cp.self_ns["ccm.invoke"], 25);
        assert_eq!(cp.self_ns["orb.giop"], 35);
        assert_eq!(cp.self_ns["fabric.link"], 40);
        let rendered = cp.render();
        assert!(rendered.contains("fabric.link"));
        assert!(rendered.contains("100 ns total"));
    }

    #[test]
    fn critical_path_clips_overlapping_children() {
        // Two concurrent children measured on different node clocks can
        // overlap in virtual time; attribution must still sum exactly.
        let mk = |span_id, parent, layer, start, end| Span {
            trace_id: 1,
            span_id,
            parent,
            node: 0,
            layer,
            name: String::new(),
            start,
            end,
            retry_of: 0,
        };
        let spans = vec![
            mk(10, 0, "ccm.invoke", 0, 100),
            mk(11, 10, "ccm.target", 10, 60),
            mk(12, 10, "ccm.target", 40, 90),
        ];
        let cp = critical_path(&spans, 10).unwrap();
        assert_eq!(cp.total, 100);
        assert_eq!(cp.self_ns.values().sum::<u64>(), 100);
        assert_eq!(cp.self_ns["ccm.target"], 80); // [10,60) + [60,90)
        assert_eq!(cp.self_ns["ccm.invoke"], 20); // [0,10) + [90,100)
    }

    #[test]
    fn canonical_dump_is_order_independent() {
        let _iso = crate::trace::isolated();
        let c = clock();
        {
            let _r = root(&c, 2, 42, "ccm.invoke", "invoke:a");
            c.advance(10);
        }
        {
            let _r = root(&c, 1, 41, "ccm.invoke", "invoke:b");
            c.advance(10);
        }
        let dump = canonical_dump(&snapshot());
        // Sorted by trace id, not by recording (or node) order.
        let pos_a = dump.find("invoke:a").unwrap();
        let pos_b = dump.find("invoke:b").unwrap();
        assert!(pos_b < pos_a);
        assert_eq!(dump.lines().count(), 2);
    }

    #[test]
    fn chrome_export_is_balanced_json() {
        let _iso = crate::trace::isolated();
        let c = clock();
        {
            let _r = root(&c, 0, 7, "ccm.invoke", "invoke:\"quoted\"");
            c.advance(1_500);
            let _k = child(&c, 0, "orb.giop", "request");
            c.advance(500);
        }
        let json = chrome_trace_json(&snapshot());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        let braces: i64 = json
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0, "balanced braces");
        let brackets: i64 = json
            .chars()
            .map(|c| match c {
                '[' => 1,
                ']' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(brackets, 0, "balanced brackets");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"ts\":2.000") || json.contains("\"ts\":0.000"));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn span_latency_feeds_metrics() {
        let _iso = crate::trace::isolated();
        let c = clock();
        {
            let _r = root(&c, 0, 3, "tm.vlink", "send:attempt1");
            c.advance(64);
        }
        let snap = crate::metrics::snapshot();
        let h = snap.histogram("latency.tm.vlink").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 64);
        // The windowed twin of the histogram.
        let ts = crate::timeseries::snapshot();
        assert_eq!(ts.series("latency.tm.vlink").unwrap().total_count(), 1);
    }

    #[test]
    fn sampling_drops_whole_trees_deterministically() {
        let _iso = crate::trace::isolated();
        let c = clock();
        set_sampling(TraceSampling::SampleEvery(4));
        let sampled: Vec<u64> = (0..64).filter(|id| trace_sampled(*id)).collect();
        assert!(!sampled.is_empty(), "some ids must pass a 1-in-4 policy");
        assert!(sampled.len() < 64, "some ids must be dropped");
        for id in 0..64u64 {
            let r = root(&c, 0, id, "ccm.invoke", format!("invoke:{id}"));
            assert_eq!(r.is_active(), trace_sampled(id));
            // Children follow the root's fate via ambient context.
            let k = child(&c, 0, "orb.giop", format!("request:{id}"));
            assert_eq!(k.is_active(), trace_sampled(id));
            c.advance(10);
        }
        let spans = snapshot();
        let mut traced: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
        traced.sort_unstable();
        traced.dedup();
        assert_eq!(traced, sampled);
        // The decision is a pure function of the id: re-evaluating gives
        // the identical set.
        assert_eq!(
            (0..64).filter(|id| trace_sampled(*id)).collect::<Vec<u64>>(),
            sampled
        );
        set_sampling(TraceSampling::Always);
        assert!(trace_sampled(sampled.len() as u64 + 1));
    }

    #[test]
    fn isolation_resets_sampling_policy() {
        let outer = crate::trace::isolated();
        set_sampling(TraceSampling::SampleEvery(8));
        {
            let _inner = crate::trace::isolated();
            assert_eq!(sampling(), TraceSampling::Always);
        }
        assert_eq!(sampling(), TraceSampling::SampleEvery(8));
        set_sampling(TraceSampling::Always);
        drop(outer);
    }

    #[test]
    fn buffers_stay_bounded_and_count_drops() {
        let _iso = crate::trace::isolated();
        let c = clock();
        let over = 64;
        for i in 0..NODE_CAP + over {
            let _r = root(&c, 1, 1, "fabric.link", format!("tx:{i}"));
        }
        assert_eq!(snapshot().len(), NODE_CAP);
        assert_eq!(dropped(), over as u64);
        assert_eq!(retained(), NODE_CAP as u64);
    }

    #[test]
    fn zero_duration_spans_export_as_instant_events() {
        let _iso = crate::trace::isolated();
        let c = clock();
        {
            let _r = root(&c, 0, 5, "tm.breaker", "open:n1");
            // No clock advance: a state transition has no duration.
        }
        {
            let _r = root(&c, 0, 6, "orb.giop", "request");
            c.advance(100);
        }
        let json = chrome_trace_json(&snapshot());
        assert!(
            json.contains("\"ph\":\"i\",\"s\":\"t\""),
            "transitions must render as instant events: {json}"
        );
        assert!(json.contains("\"ph\":\"X\""), "slices still export");
        assert!(!json.contains("\"dur\":0.000"), "no invisible slices");
    }
}
