//! Deterministic RNG plumbing.
//!
//! Workload generators (payload contents, arrival jitter, placement
//! shuffles) must be reproducible across runs, so every generator derives
//! its stream from an experiment seed plus a purpose label. Two generators
//! with different labels are statistically independent; the same
//! (seed, label) pair always produces the same stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derive a [`StdRng`] from an experiment seed and a purpose label.
pub fn derived_rng(seed: u64, label: &str) -> StdRng {
    // FNV-1a over the label, mixed with the seed; cheap and stable.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// Deterministic pseudo-random payload of `len` bytes.
///
/// Payload *contents* matter: marshalling code must not be able to cheat by
/// special-casing all-zero buffers, and tests verify bytes survive the full
/// stack bit-exactly.
pub fn payload(seed: u64, label: &str, len: usize) -> Vec<u8> {
    let mut rng = derived_rng(seed, label);
    let mut buf = vec![0u8; len];
    rng.fill(&mut buf[..]);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = payload(42, "fig7", 256);
        let b = payload(42, "fig7", 256);
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let a = payload(42, "fig7", 256);
        let b = payload(42, "fig8", 256);
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = payload(1, "x", 64);
        let b = payload(2, "x", 64);
        assert_ne!(a, b);
    }

    #[test]
    fn payload_is_not_all_zero() {
        let p = payload(7, "nonzero", 1024);
        assert!(p.iter().any(|&b| b != 0));
    }
}
