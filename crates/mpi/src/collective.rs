//! Collective operations.
//!
//! All collectives are built from point-to-point messages on reserved
//! tags, using the classic logarithmic algorithms:
//!
//! * [`Communicator::barrier`] — dissemination (⌈log₂ n⌉ rounds), which is
//!   what makes the Figure 8 latency column grow slowly with n;
//! * [`Communicator::bcast`] / [`Communicator::reduce`] — binomial trees;
//! * [`Communicator::allreduce`] — reduce + bcast;
//! * gather/scatter families — root-centric fan-in/fan-out;
//! * [`Communicator::alltoall`] — rotated pairwise exchange.
//!
//! Every collective call reserves a fresh 64-tag window (an epoch
//! counter that advances identically on all ranks, since collectives are
//! collective), so messages of successive collectives on one communicator
//! can never mix generations even when ranks drift.

use padico_fabric::Payload;

use crate::comm::Communicator;
use crate::datatype::{decode, encode, MpiDatatype, ReduceOp};
use crate::error::MpiError;

// Slot offsets inside the per-call tag window (see
// `Communicator::next_collective_window`): each collective call gets a
// fresh 64-tag window, so messages of successive collectives on one
// communicator can never mix generations.
const SLOT_BARRIER: u32 = 0; // + round, one per dissemination round
const SLOT_BCAST: u32 = 32;
const SLOT_REDUCE: u32 = 33;
const SLOT_GATHER: u32 = 34;
const SLOT_SCATTER: u32 = 35;
const SLOT_ALLTOALL: u32 = 36; // + offset % 16

impl Communicator {
    fn check_root(&self, root: usize) -> Result<(), MpiError> {
        if root >= self.size() {
            return Err(MpiError::BadRank {
                rank: root as i32,
                size: self.size(),
            });
        }
        Ok(())
    }

    /// Dissemination barrier: returns once every rank has entered.
    pub fn barrier(&self) -> Result<(), MpiError> {
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        let window = self.next_collective_window();
        let mut step = 1usize;
        let mut round = 0u32;
        while step < n {
            let to = (self.rank() + step) % n;
            let from = (self.rank() + n - step) % n;
            self.send_bytes_internal(to as i32, window + SLOT_BARRIER + round, Payload::new())?;
            self.recv_internal(from, window + SLOT_BARRIER + round)?;
            step *= 2;
            round += 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast of a byte payload from `root`.
    pub fn bcast_bytes(&self, root: usize, payload: &mut Payload) -> Result<(), MpiError> {
        self.check_root(root)?;
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        let window = self.next_collective_window();
        // Relative rank so the tree is rooted at `root`.
        let vrank = (self.rank() + n - root) % n;
        // Receive phase: find my parent (clear lowest set bit).
        if vrank != 0 {
            let parent_vrank = vrank & (vrank - 1);
            let parent = (parent_vrank + root) % n;
            *payload = self.recv_internal(parent, window + SLOT_BCAST)?;
        }
        // Send phase: children are vrank | (1 << k) above my highest bit.
        let lowest = if vrank == 0 {
            usize::BITS
        } else {
            vrank.trailing_zeros()
        };
        let mut k = 0u32;
        while k < lowest {
            let child_vrank = vrank | (1 << k);
            if child_vrank >= n {
                break;
            }
            let child = (child_vrank + root) % n;
            self.send_bytes_internal(child as i32, window + SLOT_BCAST, payload.clone())?;
            k += 1;
        }
        Ok(())
    }

    /// Typed broadcast: `buf` is the source at the root and is replaced by
    /// the broadcast data elsewhere.
    pub fn bcast<T: MpiDatatype>(&self, root: usize, buf: &mut Vec<T>) -> Result<(), MpiError> {
        let mut payload = if self.rank() == root {
            Payload::from_vec(encode(buf))
        } else {
            Payload::new()
        };
        self.bcast_bytes(root, &mut payload)?;
        if self.rank() != root {
            *buf = decode(&payload.to_vec())?;
        }
        Ok(())
    }

    /// Binomial-tree reduction to `root`; every rank contributes `buf`,
    /// the root returns the combined vector (others get `None`).
    pub fn reduce<T: MpiDatatype>(
        &self,
        root: usize,
        op: ReduceOp,
        buf: &[T],
    ) -> Result<Option<Vec<T>>, MpiError> {
        self.check_root(root)?;
        let n = self.size();
        let window = self.next_collective_window();
        let vrank = (self.rank() + n - root) % n;
        let mut acc: Vec<T> = buf.to_vec();
        // Receive from children (mirror of the bcast tree), combining.
        let lowest = if vrank == 0 {
            usize::BITS
        } else {
            vrank.trailing_zeros()
        };
        let mut k = 0u32;
        while k < lowest {
            let child_vrank = vrank | (1 << k);
            if child_vrank >= n {
                break;
            }
            let child = (child_vrank + root) % n;
            let payload = self.recv_internal(child, window + SLOT_REDUCE)?;
            let theirs: Vec<T> = decode(&payload.to_vec())?;
            if theirs.len() != acc.len() {
                return Err(MpiError::BadCount(format!(
                    "reduce contribution of {} elements, expected {}",
                    theirs.len(),
                    acc.len()
                )));
            }
            op.combine_slices(&mut acc, &theirs);
            k += 1;
        }
        // Send to parent.
        if vrank != 0 {
            let parent_vrank = vrank & (vrank - 1);
            let parent = (parent_vrank + root) % n;
            self.send_bytes_internal(parent as i32, window + SLOT_REDUCE, Payload::from_vec(encode(&acc)))?;
            Ok(None)
        } else {
            Ok(Some(acc))
        }
    }

    /// Reduce-to-all: every rank returns the combined vector.
    pub fn allreduce<T: MpiDatatype>(
        &self,
        op: ReduceOp,
        buf: &[T],
    ) -> Result<Vec<T>, MpiError> {
        let reduced = self.reduce(0, op, buf)?;
        let mut out = reduced.unwrap_or_default();
        self.bcast(0, &mut out)?;
        Ok(out)
    }

    /// Gather equal-size contributions to `root`; the root returns the
    /// concatenation in rank order.
    pub fn gather<T: MpiDatatype>(
        &self,
        root: usize,
        buf: &[T],
    ) -> Result<Option<Vec<T>>, MpiError> {
        self.check_root(root)?;
        let window = self.next_collective_window();
        if self.rank() != root {
            self.send_bytes_internal(root as i32, window + SLOT_GATHER, Payload::from_vec(encode(buf)))?;
            return Ok(None);
        }
        let mut out: Vec<T> = Vec::with_capacity(buf.len() * self.size());
        for src in 0..self.size() {
            if src == root {
                out.extend_from_slice(buf);
            } else {
                let payload = self.recv_internal(src, window + SLOT_GATHER)?;
                let theirs: Vec<T> = decode(&payload.to_vec())?;
                if theirs.len() != buf.len() {
                    return Err(MpiError::BadCount(format!(
                        "gather contribution of {} elements from rank {src}, expected {}",
                        theirs.len(),
                        buf.len()
                    )));
                }
                out.extend_from_slice(&theirs);
            }
        }
        Ok(Some(out))
    }

    /// Variable-size gather; contributions may differ in length and the
    /// root returns them per rank.
    pub fn gatherv<T: MpiDatatype>(
        &self,
        root: usize,
        buf: &[T],
    ) -> Result<Option<Vec<Vec<T>>>, MpiError> {
        self.check_root(root)?;
        let window = self.next_collective_window();
        if self.rank() != root {
            self.send_bytes_internal(root as i32, window + SLOT_GATHER, Payload::from_vec(encode(buf)))?;
            return Ok(None);
        }
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == root {
                out.push(buf.to_vec());
            } else {
                let payload = self.recv_internal(src, window + SLOT_GATHER)?;
                out.push(decode(&payload.to_vec())?);
            }
        }
        Ok(Some(out))
    }

    /// Scatter `chunks[i]` to rank `i` from `root`; every rank returns its
    /// chunk. Non-roots pass `None`.
    pub fn scatterv<T: MpiDatatype>(
        &self,
        root: usize,
        chunks: Option<&[Vec<T>]>,
    ) -> Result<Vec<T>, MpiError> {
        self.check_root(root)?;
        let window = self.next_collective_window();
        if self.rank() == root {
            let chunks = chunks.ok_or_else(|| {
                MpiError::BadCount("root must provide scatter chunks".into())
            })?;
            if chunks.len() != self.size() {
                return Err(MpiError::BadCount(format!(
                    "{} scatter chunks for {} ranks",
                    chunks.len(),
                    self.size()
                )));
            }
            for (dst, chunk) in chunks.iter().enumerate() {
                if dst != root {
                    self.send_bytes_internal(
                        dst as i32,
                        window + SLOT_SCATTER,
                        Payload::from_vec(encode(chunk)),
                    )?;
                }
            }
            Ok(chunks[root].clone())
        } else {
            let payload = self.recv_internal(root, window + SLOT_SCATTER)?;
            decode(&payload.to_vec())
        }
    }

    /// Equal-chunk scatter: the root's `data` is cut into `size()` equal
    /// chunks (length must divide evenly).
    pub fn scatter<T: MpiDatatype>(
        &self,
        root: usize,
        data: Option<&[T]>,
    ) -> Result<Vec<T>, MpiError> {
        if self.rank() == root {
            let data = data.ok_or_else(|| MpiError::BadCount("root must provide data".into()))?;
            if data.len() % self.size() != 0 {
                return Err(MpiError::BadCount(format!(
                    "{} elements do not divide into {} ranks",
                    data.len(),
                    self.size()
                )));
            }
            let per = data.len() / self.size();
            let chunks: Vec<Vec<T>> = data.chunks_exact(per).map(|c| c.to_vec()).collect();
            self.scatterv(root, Some(&chunks))
        } else {
            self.scatterv(root, None)
        }
    }

    /// Allgather: every rank returns the concatenation of all
    /// contributions in rank order.
    pub fn allgather<T: MpiDatatype>(&self, buf: &[T]) -> Result<Vec<T>, MpiError> {
        let gathered = self.gather(0, buf)?;
        let mut out = gathered.unwrap_or_default();
        self.bcast(0, &mut out)?;
        Ok(out)
    }

    /// All-to-all personalized exchange: `chunks[i]` goes to rank `i`;
    /// returns what each rank sent to us, in rank order. Uses a rotated
    /// schedule so all pairs progress concurrently.
    pub fn alltoall<T: MpiDatatype>(&self, chunks: &[Vec<T>]) -> Result<Vec<Vec<T>>, MpiError> {
        let n = self.size();
        if chunks.len() != n {
            return Err(MpiError::BadCount(format!(
                "{} alltoall chunks for {n} ranks",
                chunks.len()
            )));
        }
        let window = self.next_collective_window();
        let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        out[self.rank()] = chunks[self.rank()].clone();
        for offset in 1..n {
            let to = (self.rank() + offset) % n;
            let from = (self.rank() + n - offset) % n;
            let tag = window + SLOT_ALLTOALL + (offset as u32 % 16);
            self.send_bytes_internal(to as i32, tag, Payload::from_vec(encode(&chunks[to])))?;
            let payload = self.recv_internal(from, tag)?;
            out[from] = decode(&payload.to_vec())?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::tests::world;
    use std::thread;

    /// Run one closure per rank on its own thread and collect results in
    /// rank order.
    fn run_ranks<R: Send + 'static>(
        comms: Vec<Communicator>,
        f: impl Fn(Communicator) -> R + Send + Sync + Clone + 'static,
    ) -> Vec<R> {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn barrier_completes_on_all_sizes() {
        for n in [1, 2, 3, 4, 7, 8] {
            let results = run_ranks(world(n), |c| c.barrier().is_ok());
            assert!(results.into_iter().all(|ok| ok), "barrier failed for n={n}");
        }
    }

    #[test]
    fn barrier_latency_grows_logarithmically() {
        // Virtual time for a barrier must scale ~log2(n), not ~n.
        let mut costs = vec![];
        for n in [2usize, 4, 8] {
            let elapsed = run_ranks(world(n), |c| {
                let start = c.clock().now();
                c.barrier().unwrap();
                c.clock().now() - start
            });
            costs.push(*elapsed.iter().max().unwrap() as f64);
        }
        // 8 ranks = 3 rounds vs 2 ranks = 1 round: the critical path grows
        // with the round count (×3) plus per-message fan-in costs — well
        // under the ×7 a linear algorithm would show.
        assert!(
            costs[2] / costs[0] < 7.0,
            "barrier cost should grow like log n: {costs:?}"
        );
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..3 {
            let results = run_ranks(world(3), move |c| {
                let mut buf = if c.rank() == root {
                    vec![13i32, 37]
                } else {
                    vec![]
                };
                c.bcast(root, &mut buf).unwrap();
                buf
            });
            for r in results {
                assert_eq!(r, vec![13, 37], "root={root}");
            }
        }
    }

    #[test]
    fn reduce_sum_and_max() {
        let results = run_ranks(world(4), |c| {
            let mine = vec![c.rank() as i64 + 1, 10 * (c.rank() as i64 + 1)];
            c.reduce(0, ReduceOp::Sum, &mine).unwrap()
        });
        assert_eq!(results[0].as_ref().unwrap(), &vec![10i64, 100]);
        assert!(results[1..].iter().all(|r| r.is_none()));

        let results = run_ranks(world(5), |c| {
            let mine = vec![(c.rank() as f64) * 1.5];
            c.reduce(2, ReduceOp::Max, &mine).unwrap()
        });
        assert_eq!(results[2].as_ref().unwrap(), &vec![6.0]);
    }

    #[test]
    fn allreduce_gives_everyone_the_answer() {
        let results = run_ranks(world(4), |c| {
            c.allreduce(ReduceOp::Sum, &[1i32, c.rank() as i32]).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![4, 1 + 2 + 3]);
        }
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let results = run_ranks(world(3), |c| {
            c.gather(1, &[c.rank() as u16, 99]).unwrap()
        });
        assert!(results[0].is_none());
        assert_eq!(results[1].as_ref().unwrap(), &vec![0u16, 99, 1, 99, 2, 99]);
    }

    #[test]
    fn gatherv_allows_ragged_contributions() {
        let results = run_ranks(world(3), |c| {
            let mine: Vec<u8> = vec![c.rank() as u8; c.rank() + 1];
            c.gatherv(0, &mine).unwrap()
        });
        let per_rank = results[0].as_ref().unwrap();
        assert_eq!(per_rank[0], vec![0]);
        assert_eq!(per_rank[1], vec![1, 1]);
        assert_eq!(per_rank[2], vec![2, 2, 2]);
    }

    #[test]
    fn scatter_distributes_equal_chunks() {
        let results = run_ranks(world(4), |c| {
            let data: Option<Vec<i32>> = (c.rank() == 0).then(|| (0..8).collect());
            c.scatter(0, data.as_deref()).unwrap()
        });
        assert_eq!(results[0], vec![0, 1]);
        assert_eq!(results[1], vec![2, 3]);
        assert_eq!(results[2], vec![4, 5]);
        assert_eq!(results[3], vec![6, 7]);
    }

    #[test]
    fn scatter_rejects_uneven_data() {
        let results = run_ranks(world(3), |c| {
            if c.rank() == 0 {
                let data = vec![1i32, 2, 3, 4]; // 4 % 3 != 0
                c.scatter(0, Some(&data)).err()
            } else {
                // Peers would block forever on a real error, so only the
                // root participates in this negative test.
                None
            }
        });
        assert!(matches!(results[0], Some(MpiError::BadCount(_))));
    }

    #[test]
    fn allgather_everywhere() {
        let results = run_ranks(world(3), |c| c.allgather(&[c.rank() as i32 * 10]).unwrap());
        for r in results {
            assert_eq!(r, vec![0, 10, 20]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let results = run_ranks(world(3), |c| {
            // Rank r sends [r*10 + dst] to each dst.
            let chunks: Vec<Vec<i32>> = (0..3).map(|dst| vec![c.rank() as i32 * 10 + dst]).collect();
            c.alltoall(&chunks).unwrap()
        });
        for (dst, got) in results.iter().enumerate() {
            let expected: Vec<Vec<i32>> = (0..3).map(|src| vec![src * 10 + dst as i32]).collect();
            assert_eq!(got, &expected);
        }
    }

    #[test]
    fn collectives_on_split_subgroups() {
        let results = run_ranks(world(4), |c| {
            let sub = c.split((c.rank() % 2) as u32, 0).unwrap();
            sub.allreduce(ReduceOp::Sum, &[c.rank() as i32]).unwrap()
        });
        assert_eq!(results[0], vec![2]);
        assert_eq!(results[1], vec![1 + 3]);
        assert_eq!(results[2], vec![2]);
        assert_eq!(results[3], vec![1 + 3]);
    }

    #[test]
    fn bad_root_rejected() {
        let comms = world(2);
        assert!(matches!(
            comms[0].reduce(7, ReduceOp::Sum, &[1i32]),
            Err(MpiError::BadRank { .. })
        ));
        let mut buf: Vec<i32> = vec![];
        assert!(matches!(
            comms[0].bcast(9, &mut buf),
            Err(MpiError::BadRank { .. })
        ));
    }
}
