//! MPI error type.

use padico_tm::TmError;
use std::fmt;

/// Errors raised by the MPI layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Underlying PadicoTM error.
    Tm(TmError),
    /// Rank out of range for the communicator.
    BadRank { rank: i32, size: usize },
    /// Tag outside the user tag space.
    BadTag(u32),
    /// Receive buffer shorter than the incoming message.
    Truncated { incoming: usize, capacity: usize },
    /// Count mismatch in a collective (e.g. scatterv layout).
    BadCount(String),
    /// Datatype decode failure (length not a multiple of the type size).
    BadDatatype(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Tm(e) => write!(f, "transport error: {e}"),
            MpiError::BadRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            MpiError::BadTag(t) => write!(f, "tag {t} outside the user tag space"),
            MpiError::Truncated { incoming, capacity } => {
                write!(f, "message truncated: {incoming} bytes into {capacity}")
            }
            MpiError::BadCount(what) => write!(f, "count mismatch: {what}"),
            MpiError::BadDatatype(what) => write!(f, "datatype error: {what}"),
        }
    }
}

impl std::error::Error for MpiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpiError::Tm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TmError> for MpiError {
    fn from(e: TmError) -> Self {
        MpiError::Tm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MpiError::BadRank { rank: 9, size: 4 }
            .to_string()
            .contains("9"));
        assert!(MpiError::Truncated {
            incoming: 100,
            capacity: 10
        }
        .to_string()
        .contains("truncated"));
        assert!(MpiError::from(TmError::Closed).to_string().contains("transport"));
    }
}
