//! Communicators and tagged point-to-point messaging.
//!
//! A [`Communicator`] is a view over an underlying circuit: a rank
//! numbering, a communication context (`comm id`) isolating its traffic
//! from sibling communicators on the same circuit, and the matching engine
//! that implements MPI receive semantics (FIFO per (source, tag), wildcard
//! source/tag, out-of-order stashing).
//!
//! Wire mapping: the circuit's opaque 64-bit transport header carries
//! `comm_id` (16 bits) and `tag` (32 bits); payloads travel untouched, so
//! the zero-copy `*_bytes` API preserves the fabric's hand-off semantics
//! end to end.

use padico_fabric::Payload;
use padico_tm::circuit::Circuit;
use padico_tm::driver::ArbitratedDriver;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::datatype::{decode, encode, MpiDatatype};
use crate::error::MpiError;
use crate::MPI_PROTOCOL_NS;

/// Wildcard source rank (like `MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (like `MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;

/// Highest user tag; tags above are reserved for collectives.
pub const MAX_USER_TAG: u32 = (1 << 30) - 1;

/// Completion information of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvStatus {
    /// Rank the message came from (in this communicator).
    pub source: usize,
    /// Tag it was sent with.
    pub tag: u32,
    /// Byte length of the message.
    pub len: usize,
}

struct Envelope {
    comm: u16,
    src_circuit_rank: u32,
    tag: u32,
    payload: Payload,
}

/// Shared matching engine: one per circuit, shared by all communicators
/// derived from it.
struct MatchEngine {
    circuit: Arc<Circuit>,
    stash: Mutex<VecDeque<Envelope>>,
}

impl MatchEngine {
    fn decode_header(header: u64) -> (u16, u32) {
        ((header >> 48) as u16, ((header >> 16) & 0xffff_ffff) as u32)
    }

    fn encode_header(comm: u16, tag: u32) -> u64 {
        (u64::from(comm) << 48) | (u64::from(tag) << 16)
    }

    /// Blocking matched receive.
    fn recv_match(
        &self,
        comm: u16,
        want_src: Option<u32>,
        want_tag: Option<u32>,
    ) -> Result<Envelope, MpiError> {
        loop {
            {
                let mut stash = self.stash.lock();
                if let Some(pos) = stash.iter().position(|e| {
                    e.comm == comm
                        && want_src.is_none_or(|s| s == e.src_circuit_rank)
                        && want_tag.is_none_or(|t| t == e.tag)
                }) {
                    return Ok(stash.remove(pos).expect("position valid"));
                }
            }
            let (src, header, payload) = self.circuit.recv().map_err(MpiError::from)?;
            self.circuit.clock().advance(MPI_PROTOCOL_NS);
            let (msg_comm, tag) = Self::decode_header(header);
            let envelope = Envelope {
                comm: msg_comm,
                src_circuit_rank: src,
                tag,
                payload,
            };
            let matches = msg_comm == comm
                && want_src.is_none_or(|s| s == src)
                && want_tag.is_none_or(|t| t == tag);
            if matches {
                return Ok(envelope);
            }
            self.stash.lock().push_back(envelope);
        }
    }

    /// Non-blocking matched receive.
    fn try_recv_match(
        &self,
        comm: u16,
        want_src: Option<u32>,
        want_tag: Option<u32>,
    ) -> Result<Option<Envelope>, MpiError> {
        // Drain everything currently pending into the stash first, then
        // search the stash once.
        while let Some((src, header, payload)) = self.circuit.try_recv().map_err(MpiError::from)? {
            self.circuit.clock().advance(MPI_PROTOCOL_NS);
            let (msg_comm, tag) = Self::decode_header(header);
            self.stash.lock().push_back(Envelope {
                comm: msg_comm,
                src_circuit_rank: src,
                tag,
                payload,
            });
        }
        let mut stash = self.stash.lock();
        if let Some(pos) = stash.iter().position(|e| {
            e.comm == comm
                && want_src.is_none_or(|s| s == e.src_circuit_rank)
                && want_tag.is_none_or(|t| t == e.tag)
        }) {
            return Ok(Some(stash.remove(pos).expect("position valid")));
        }
        Ok(None)
    }
}

/// An MPI communicator.
#[derive(Clone)]
pub struct Communicator {
    engine: Arc<MatchEngine>,
    comm_id: u16,
    rank: usize,
    /// Circuit rank of each member, indexed by communicator rank.
    members: Arc<Vec<u32>>,
    /// Per-parent derived-communicator sequence (kept identical across
    /// ranks because `dup`/`split` are collective).
    derive_seq: Arc<Mutex<u16>>,
    /// Collective call counter (identical across ranks because
    /// collectives are collective); isolates the reserved tags of
    /// successive collective calls so generations cannot mix.
    collective_epoch: Arc<std::sync::atomic::AtomicU64>,
}

impl Communicator {
    /// The `WORLD` communicator of a circuit.
    pub(crate) fn world(circuit: Arc<Circuit>) -> Communicator {
        let size = circuit.size();
        let rank = circuit.rank();
        Communicator {
            engine: Arc::new(MatchEngine {
                circuit,
                stash: Mutex::new(VecDeque::new()),
            }),
            comm_id: 0,
            rank,
            members: Arc::new((0..size as u32).collect()),
            derive_seq: Arc::new(Mutex::new(1)),
            collective_epoch: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Reserve the tag window for the next collective call; every rank
    /// obtains the same window because collectives are collective.
    pub(crate) fn next_collective_window(&self) -> u32 {
        let epoch = self
            .collective_epoch
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        crate::comm::ITAG_COLLECTIVE_BASE + ((epoch % 4096) as u32) * 64
    }

    /// This process's rank in the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The communication context id (diagnostics).
    pub fn id(&self) -> u16 {
        self.comm_id
    }

    /// The node clock (for experiment timing).
    pub fn clock(&self) -> &padico_util::SimClock {
        self.engine.circuit.clock()
    }

    fn circuit_rank(&self, comm_rank: i32) -> Result<u32, MpiError> {
        usize::try_from(comm_rank)
            .ok()
            .and_then(|r| self.members.get(r).copied())
            .ok_or(MpiError::BadRank {
                rank: comm_rank,
                size: self.size(),
            })
    }

    fn comm_rank_of(&self, circuit_rank: u32) -> usize {
        self.members
            .iter()
            .position(|&m| m == circuit_rank)
            .expect("matched envelope is from a member")
    }

    fn check_tag(tag: u32) -> Result<(), MpiError> {
        if tag > MAX_USER_TAG {
            return Err(MpiError::BadTag(tag));
        }
        Ok(())
    }

    /// Zero-copy tagged send.
    pub fn send_bytes(&self, dst: i32, tag: u32, payload: Payload) -> Result<(), MpiError> {
        Self::check_tag(tag)?;
        self.send_bytes_internal(dst, tag, payload)
    }

    /// Internal send that may use reserved tags (collectives).
    pub(crate) fn send_bytes_internal(
        &self,
        dst: i32,
        tag: u32,
        payload: Payload,
    ) -> Result<(), MpiError> {
        let dst_circuit = self.circuit_rank(dst)?;
        self.clock().advance(MPI_PROTOCOL_NS);
        self.engine
            .circuit
            .send(
                dst_circuit as usize,
                MatchEngine::encode_header(self.comm_id, tag),
                payload,
            )
            .map_err(MpiError::from)?;
        // Eager protocol: an MPI send completes only once the message is
        // on the wire, so the send itself is the coalescing barrier — a
        // rank blocked in a matching recv must not wait on a frame parked
        // in our batch.
        self.engine.circuit.flush().map_err(MpiError::from)
    }

    /// Typed tagged send (encodes with one copy).
    pub fn send<T: MpiDatatype>(&self, dst: i32, tag: u32, buf: &[T]) -> Result<(), MpiError> {
        let bytes = encode(buf);
        padico_fabric::model::charge_copy(self.clock(), bytes.len());
        self.send_bytes(dst, tag, Payload::from_vec(bytes))
    }

    /// Zero-copy tagged receive.
    pub fn recv_bytes(&self, src: i32, tag: i32) -> Result<(RecvStatus, Payload), MpiError> {
        let want_src = if src == ANY_SOURCE {
            None
        } else {
            Some(self.circuit_rank(src)?)
        };
        let want_tag = if tag == ANY_TAG {
            None
        } else {
            Some(u32::try_from(tag).map_err(|_| MpiError::BadTag(0))?)
        };
        let envelope = self.engine.recv_match(self.comm_id, want_src, want_tag)?;
        Ok((
            RecvStatus {
                source: self.comm_rank_of(envelope.src_circuit_rank),
                tag: envelope.tag,
                len: envelope.payload.len(),
            },
            envelope.payload,
        ))
    }

    /// Typed tagged receive returning a fresh vector.
    pub fn recv<T: MpiDatatype>(
        &self,
        src: i32,
        tag: i32,
    ) -> Result<(RecvStatus, Vec<T>), MpiError> {
        let (status, payload) = self.recv_bytes(src, tag)?;
        let bytes = payload.to_vec();
        padico_fabric::model::charge_copy(self.clock(), bytes.len());
        Ok((status, decode(&bytes)?))
    }

    /// Typed receive into a caller buffer; errors if the message is longer
    /// than the buffer (like `MPI_ERR_TRUNCATE`). Returns the element
    /// count actually received.
    pub fn recv_into<T: MpiDatatype>(
        &self,
        src: i32,
        tag: i32,
        buf: &mut [T],
    ) -> Result<(RecvStatus, usize), MpiError> {
        let (status, data) = self.recv::<T>(src, tag)?;
        if data.len() > buf.len() {
            return Err(MpiError::Truncated {
                incoming: data.len() * T::SIZE,
                capacity: buf.len() * T::SIZE,
            });
        }
        buf[..data.len()].copy_from_slice(&data);
        Ok((status, data.len()))
    }

    /// Non-blocking probe-and-receive.
    pub fn try_recv_bytes(
        &self,
        src: i32,
        tag: i32,
    ) -> Result<Option<(RecvStatus, Payload)>, MpiError> {
        let want_src = if src == ANY_SOURCE {
            None
        } else {
            Some(self.circuit_rank(src)?)
        };
        let want_tag = if tag == ANY_TAG {
            None
        } else {
            Some(u32::try_from(tag).map_err(|_| MpiError::BadTag(0))?)
        };
        Ok(self
            .engine
            .try_recv_match(self.comm_id, want_src, want_tag)?
            .map(|envelope| {
                (
                    RecvStatus {
                        source: self.comm_rank_of(envelope.src_circuit_rank),
                        tag: envelope.tag,
                        len: envelope.payload.len(),
                    },
                    envelope.payload,
                )
            }))
    }

    /// Internal receive that may use reserved tags (collectives).
    pub(crate) fn recv_internal(
        &self,
        src: usize,
        tag: u32,
    ) -> Result<Payload, MpiError> {
        let want_src = Some(self.circuit_rank(src as i32)?);
        let envelope = self.engine.recv_match(self.comm_id, want_src, Some(tag))?;
        Ok(envelope.payload)
    }

    /// Collective duplicate: every rank must call it; the clone has a fresh
    /// communication context but the same group.
    pub fn dup(&self) -> Communicator {
        let mut seq = self.derive_seq.lock();
        let comm_id = derive_id(self.comm_id, *seq, 0);
        *seq += 1;
        Communicator {
            engine: Arc::clone(&self.engine),
            comm_id,
            rank: self.rank,
            members: Arc::clone(&self.members),
            derive_seq: Arc::new(Mutex::new(1)),
            collective_epoch: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Collective split by `color` (ranks with equal colors form a new
    /// communicator, ordered by `key` then by parent rank). Every rank of
    /// the parent must call it with its own color/key.
    pub fn split(&self, color: u32, key: i32) -> Result<Communicator, MpiError> {
        // Allgather (color, key) over the parent using the internal tag.
        let mut entries: Vec<(u32, i32, usize)> = Vec::with_capacity(self.size());
        let mine = encode(&[color as i32, key]);
        for dst in 0..self.size() {
            if dst != self.rank {
                self.send_bytes_internal(
                    dst as i32,
                    ITAG_SPLIT,
                    Payload::from_vec(mine.clone()),
                )?;
            }
        }
        entries.push((color, key, self.rank));
        for src in 0..self.size() {
            if src != self.rank {
                let payload = self.recv_internal(src, ITAG_SPLIT)?;
                let vals: Vec<i32> = decode(&payload.to_vec())?;
                if vals.len() != 2 {
                    return Err(MpiError::BadCount("split exchange".into()));
                }
                entries.push((vals[0] as u32, vals[1], src));
            }
        }
        let mut group: Vec<(u32, i32, usize)> = entries
            .into_iter()
            .filter(|(c, _, _)| *c == color)
            .collect();
        group.sort_by_key(|&(_, k, r)| (k, r));
        let members: Vec<u32> = group
            .iter()
            .map(|&(_, _, parent_rank)| self.members[parent_rank])
            .collect();
        let rank = group
            .iter()
            .position(|&(_, _, r)| r == self.rank)
            .expect("caller is in its own color group");
        let mut seq = self.derive_seq.lock();
        let comm_id = derive_id(self.comm_id, *seq, color as u16);
        *seq += 1;
        Ok(Communicator {
            engine: Arc::clone(&self.engine),
            comm_id,
            rank,
            members: Arc::new(members),
            derive_seq: Arc::new(Mutex::new(1)),
            collective_epoch: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }
}

/// Reserved tag used by `split`'s internal exchange.
pub(crate) const ITAG_SPLIT: u32 = MAX_USER_TAG + 1;
/// Base of the reserved tag space used by collectives.
pub(crate) const ITAG_COLLECTIVE_BASE: u32 = MAX_USER_TAG + 16;

fn derive_id(parent: u16, seq: u16, salt: u16) -> u16 {
    // Cheap mixing; collisions across *concurrently used* communicators
    // are what matters, and (parent, seq, salt) triples are unique per
    // collective call sequence.
    let x = (u32::from(parent) << 16) ^ (u32::from(seq) << 4) ^ u32::from(salt);
    let mut h = x.wrapping_mul(0x9e37_79b9);
    h ^= h >> 16;
    ((h & 0xffff) as u16) | 1 // never 0 (0 is WORLD)
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Communicator(id={} rank={}/{})",
            self.comm_id,
            self.rank,
            self.size()
        )
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::init_world;
    use padico_fabric::topology::single_cluster;
    use padico_tm::runtime::PadicoTM;
    use padico_tm::selector::FabricChoice;

    pub(crate) fn world(n: usize) -> Vec<Communicator> {
        let (topo, ids) = single_cluster(n);
        let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
        tms.iter()
            .map(|tm| init_world(tm, "t", ids.clone(), FabricChoice::Auto).unwrap())
            .collect()
    }

    #[test]
    fn world_has_correct_shape() {
        let comms = world(3);
        for (i, c) in comms.iter().enumerate() {
            assert_eq!(c.rank(), i);
            assert_eq!(c.size(), 3);
            assert_eq!(c.id(), 0);
        }
    }

    #[test]
    fn typed_send_recv() {
        let comms = world(2);
        comms[0].send(1, 5, &[1.5f64, -2.5, 99.0]).unwrap();
        let (status, data) = comms[1].recv::<f64>(0, 5).unwrap();
        assert_eq!(status.source, 0);
        assert_eq!(status.tag, 5);
        assert_eq!(data, vec![1.5, -2.5, 99.0]);
    }

    #[test]
    fn tag_matching_is_selective() {
        let comms = world(2);
        comms[0].send(1, 1, &[1i32]).unwrap();
        comms[0].send(1, 2, &[2i32]).unwrap();
        // Ask for tag 2 first; tag 1 must be stashed, not lost.
        let (_, two) = comms[1].recv::<i32>(0, 2).unwrap();
        assert_eq!(two, vec![2]);
        let (_, one) = comms[1].recv::<i32>(0, 1).unwrap();
        assert_eq!(one, vec![1]);
    }

    #[test]
    fn wildcards_match_anything() {
        let comms = world(3);
        comms[2].send(0, 9, &[42u8]).unwrap();
        let (status, data) = comms[0].recv::<u8>(ANY_SOURCE, ANY_TAG).unwrap();
        assert_eq!(status.source, 2);
        assert_eq!(status.tag, 9);
        assert_eq!(data, vec![42]);
    }

    #[test]
    fn recv_into_checks_capacity() {
        let comms = world(2);
        comms[0].send(1, 0, &[1i32, 2, 3, 4]).unwrap();
        let mut small = [0i32; 2];
        let err = comms[1].recv_into(0, 0, &mut small).unwrap_err();
        assert!(matches!(err, MpiError::Truncated { .. }));
        comms[0].send(1, 0, &[7i32]).unwrap();
        let mut big = [0i32; 8];
        let (_, n) = comms[1].recv_into(0, 0, &mut big).unwrap();
        assert_eq!(n, 1);
        assert_eq!(big[0], 7);
    }

    #[test]
    fn bad_rank_and_tag_rejected() {
        let comms = world(2);
        assert!(matches!(
            comms[0].send(5, 0, &[1u8]),
            Err(MpiError::BadRank { .. })
        ));
        assert!(matches!(
            comms[0].send_bytes(1, MAX_USER_TAG + 1, Payload::new()),
            Err(MpiError::BadTag(_))
        ));
    }

    #[test]
    fn dup_isolates_traffic() {
        let comms = world(2);
        let dups: Vec<Communicator> = comms.iter().map(|c| c.dup()).collect();
        assert_eq!(dups[0].id(), dups[1].id(), "collective dup agrees on id");
        assert_ne!(dups[0].id(), comms[0].id());
        // Same (src, tag) on both communicators; each recv sees its own.
        comms[0].send(1, 3, &[10i32]).unwrap();
        dups[0].send(1, 3, &[20i32]).unwrap();
        let (_, via_dup) = dups[1].recv::<i32>(0, 3).unwrap();
        assert_eq!(via_dup, vec![20]);
        let (_, via_world) = comms[1].recv::<i32>(0, 3).unwrap();
        assert_eq!(via_world, vec![10]);
    }

    #[test]
    fn split_forms_sub_communicators() {
        let comms = world(4);
        // Colors: even ranks vs odd ranks; run each rank on a thread since
        // split is collective.
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    let color = (c.rank() % 2) as u32;
                    let sub = c.split(color, 0).unwrap();
                    (c.rank(), sub.rank(), sub.size(), sub.id())
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (parent_rank, sub_rank, sub_size, _id) in &results {
            assert_eq!(*sub_size, 2);
            assert_eq!(*sub_rank, parent_rank / 2);
        }
        // Both members of one color agree on the id; colors differ.
        let even_ids: Vec<u16> = results
            .iter()
            .filter(|(p, _, _, _)| p % 2 == 0)
            .map(|(_, _, _, id)| *id)
            .collect();
        let odd_ids: Vec<u16> = results
            .iter()
            .filter(|(p, _, _, _)| p % 2 == 1)
            .map(|(_, _, _, id)| *id)
            .collect();
        assert_eq!(even_ids[0], even_ids[1]);
        assert_eq!(odd_ids[0], odd_ids[1]);
        assert_ne!(even_ids[0], odd_ids[0]);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let comms = world(2);
        assert!(comms[1].try_recv_bytes(0, ANY_TAG).unwrap().is_none());
        comms[0].send(1, 4, &[1u8]).unwrap();
        let mut got = None;
        for _ in 0..200 {
            if let Some(x) = comms[1].try_recv_bytes(0, 4).unwrap() {
                got = Some(x);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got.unwrap().1.to_vec(), vec![1]);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let comms = world(2);
        for i in 0..10i32 {
            comms[0].send(1, 7, &[i]).unwrap();
        }
        for i in 0..10i32 {
            let (_, v) = comms[1].recv::<i32>(0, 7).unwrap();
            assert_eq!(v, vec![i]);
        }
    }
}
