//! # padico-mpi
//!
//! An MPI subset running on PadicoTM's [`padico_tm::circuit::Circuit`]
//! abstraction — the reproduction's stand-in for MPICH/Madeleine, which
//! the paper ports onto PadicoTM "with very few changes" (§4.3.4) and
//! reports to add "no significant overhead" over native MPICH/Madeleine.
//!
//! Scope (what the paper's experiments and GridCCM need):
//!
//! * communicators: `WORLD`, [`Communicator::dup`], [`Communicator::split`];
//! * tagged point-to-point: [`Communicator::send`] / [`Communicator::recv`]
//!   with `ANY_SOURCE` / `ANY_TAG` wildcards, typed or zero-copy payloads;
//! * non-blocking operations ([`request::Request`]) — completion is driven
//!   synchronously at `wait`/`test` time (a deliberate simplification: the
//!   progress engine runs inside MPI calls, as in single-threaded MPICH);
//! * collectives: barrier, bcast, reduce, allreduce, gather(-v),
//!   scatter(-v), allgather, alltoall — binomial-tree / dissemination
//!   algorithms so latency scales as `O(log n)`.
//!
//! Like any PadicoTM middleware, the MPI module never names a network: the
//! circuit it is built on may ride Myrinet, SCI, Ethernet or shared memory.

pub mod collective;
pub mod comm;
pub mod datatype;
pub mod error;
pub mod request;

pub use comm::{Communicator, RecvStatus, ANY_SOURCE, ANY_TAG};
pub use datatype::{MpiDatatype, ReduceOp};
pub use error::MpiError;

use padico_tm::circuit::CircuitSpec;
use padico_tm::runtime::PadicoTM;
use padico_tm::selector::FabricChoice;
use padico_util::ids::NodeId;
use std::sync::Arc;

/// Per-message protocol cost of the MPI layer (matching, header handling),
/// calibrated so that small-message one-way latency over Myrinet lands at
/// the paper's 11 µs (the fabric contributes ≈8.5 µs).
pub const MPI_PROTOCOL_NS: u64 = 2_000;

/// Build the `WORLD` communicator for one rank of an MPI job.
///
/// Every participating node must call this with the same `job` name and
/// `group` (one entry per rank). The fabric is selected automatically
/// unless pinned.
pub fn init_world(
    tm: &Arc<PadicoTM>,
    job: &str,
    group: Vec<NodeId>,
    choice: FabricChoice,
) -> Result<Communicator, MpiError> {
    let circuit = tm
        .circuit(CircuitSpec::new(format!("mpi:{job}"), group).with_choice(choice))
        .map_err(MpiError::from)?;
    Ok(Communicator::world(Arc::new(circuit)))
}
