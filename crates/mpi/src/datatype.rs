//! MPI datatypes and reduction operators.
//!
//! Fixed-size scalar types implement [`MpiDatatype`]: a little-endian wire
//! encoding plus the arithmetic the reduction collectives need. The
//! encode/decode paths copy (typed convenience API); bulk transfers that
//! must be zero-copy use the `*_bytes` API on
//! [`crate::comm::Communicator`] directly.

use crate::error::MpiError;

/// A fixed-size element type transferable through MPI calls.
pub trait MpiDatatype: Copy + PartialOrd + Send + Sync + 'static {
    /// Wire size of one element, bytes.
    const SIZE: usize;
    /// Human-readable type name (diagnostics).
    const NAME: &'static str;

    fn write_to(&self, out: &mut Vec<u8>);
    fn read_from(bytes: &[u8]) -> Self;

    /// Element-wise addition for reductions.
    fn add(self, other: Self) -> Self;
    /// Element-wise multiplication for reductions.
    fn mul(self, other: Self) -> Self;
}

macro_rules! impl_datatype {
    ($($t:ty),*) => {$(
        impl MpiDatatype for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = stringify!($t);

            #[inline]
            fn write_to(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_from(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("exact size"))
            }

            #[inline]
            fn add(self, other: Self) -> Self {
                self + other
            }

            #[inline]
            fn mul(self, other: Self) -> Self {
                self * other
            }
        }
    )*};
}

impl_datatype!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Encode a slice to its wire form (one copy, charged by the caller if on
/// a metered path).
pub fn encode<T: MpiDatatype>(buf: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(buf.len() * T::SIZE);
    for x in buf {
        x.write_to(&mut out);
    }
    out
}

/// Decode a wire buffer into a vector of `T`.
pub fn decode<T: MpiDatatype>(bytes: &[u8]) -> Result<Vec<T>, MpiError> {
    if !bytes.len().is_multiple_of(T::SIZE) {
        return Err(MpiError::BadDatatype(format!(
            "{} bytes is not a multiple of {}::SIZE = {}",
            bytes.len(),
            T::NAME,
            T::SIZE
        )));
    }
    Ok(bytes.chunks_exact(T::SIZE).map(T::read_from).collect())
}

/// Reduction operators for `reduce` / `allreduce`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    Sum,
    Prod,
    Min,
    Max,
}

impl ReduceOp {
    /// Combine two elements.
    pub fn combine<T: MpiDatatype>(self, a: T, b: T) -> T {
        match self {
            ReduceOp::Sum => a.add(b),
            ReduceOp::Prod => a.mul(b),
            ReduceOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
            ReduceOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
        }
    }

    /// Combine element-wise into `acc`.
    pub fn combine_slices<T: MpiDatatype>(self, acc: &mut [T], other: &[T]) {
        debug_assert_eq!(acc.len(), other.len());
        for (a, b) in acc.iter_mut().zip(other) {
            *a = self.combine(*a, *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_scalar_types() {
        assert_eq!(decode::<i32>(&encode(&[1i32, -5, 1 << 20])).unwrap(), vec![
            1,
            -5,
            1 << 20
        ]);
        assert_eq!(
            decode::<f64>(&encode(&[1.5f64, -0.25])).unwrap(),
            vec![1.5, -0.25]
        );
        assert_eq!(decode::<u8>(&encode(&[7u8, 8])).unwrap(), vec![7, 8]);
        assert_eq!(decode::<i64>(&encode(&[i64::MIN])).unwrap(), vec![i64::MIN]);
    }

    #[test]
    fn decode_rejects_ragged_input() {
        let err = decode::<i32>(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, MpiError::BadDatatype(_)));
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.combine(2i32, 3), 5);
        assert_eq!(ReduceOp::Prod.combine(2i32, 3), 6);
        assert_eq!(ReduceOp::Min.combine(2.5f64, 3.5), 2.5);
        assert_eq!(ReduceOp::Max.combine(2u8, 3), 3);
    }

    #[test]
    fn combine_slices_elementwise() {
        let mut acc = [1i32, 10, 100];
        ReduceOp::Sum.combine_slices(&mut acc, &[2, 20, 200]);
        assert_eq!(acc, [3, 30, 300]);
        ReduceOp::Max.combine_slices(&mut acc, &[5, 5, 500]);
        assert_eq!(acc, [5, 30, 500]);
    }

    #[test]
    fn empty_slices() {
        assert!(encode::<i32>(&[]).is_empty());
        assert!(decode::<i32>(&[]).unwrap().is_empty());
    }
}
