//! Non-blocking operations.
//!
//! [`Communicator::isend`] is eager: the payload is handed to the
//! transport immediately (legal buffered-send semantics) and the returned
//! request is already complete. [`Communicator::irecv`] registers a match
//! specification; progress happens inside [`RecvRequest::test`] and
//! [`RecvRequest::wait`] — the synchronous progress-engine model of
//! single-threaded MPICH, which is all the paper's workloads need.

use padico_fabric::Payload;

use crate::comm::{Communicator, RecvStatus};
use crate::datatype::{decode, MpiDatatype};
use crate::error::MpiError;

/// A completed (eager) send request.
#[derive(Debug)]
pub struct SendRequest {
    len: usize,
}

impl SendRequest {
    /// Block until the send completes (already has).
    pub fn wait(self) -> usize {
        self.len
    }

    /// Whether the operation is complete (always, for eager sends).
    pub fn test(&self) -> bool {
        true
    }
}

/// An outstanding receive request.
#[derive(Debug)]
pub struct RecvRequest {
    comm: Communicator,
    src: i32,
    tag: i32,
    done: Option<(RecvStatus, Payload)>,
}

impl RecvRequest {
    /// Poll for completion; returns `true` once a matching message has
    /// been captured (it is then held until `wait`).
    pub fn test(&mut self) -> Result<bool, MpiError> {
        if self.done.is_some() {
            return Ok(true);
        }
        if let Some(found) = self.comm.try_recv_bytes(self.src, self.tag)? {
            self.done = Some(found);
            return Ok(true);
        }
        Ok(false)
    }

    /// Block until the matching message arrives and return it raw.
    pub fn wait_bytes(mut self) -> Result<(RecvStatus, Payload), MpiError> {
        if let Some(found) = self.done.take() {
            return Ok(found);
        }
        self.comm.recv_bytes(self.src, self.tag)
    }

    /// Block and decode as `T`.
    pub fn wait<T: MpiDatatype>(self) -> Result<(RecvStatus, Vec<T>), MpiError> {
        let (status, payload) = self.wait_bytes()?;
        Ok((status, decode(&payload.to_vec())?))
    }
}

impl Communicator {
    /// Non-blocking (eager) typed send.
    pub fn isend<T: MpiDatatype>(
        &self,
        dst: i32,
        tag: u32,
        buf: &[T],
    ) -> Result<SendRequest, MpiError> {
        self.send(dst, tag, buf)?;
        Ok(SendRequest {
            len: buf.len() * T::SIZE,
        })
    }

    /// Non-blocking (eager) zero-copy send.
    pub fn isend_bytes(
        &self,
        dst: i32,
        tag: u32,
        payload: Payload,
    ) -> Result<SendRequest, MpiError> {
        let len = payload.len();
        self.send_bytes(dst, tag, payload)?;
        Ok(SendRequest { len })
    }

    /// Post a non-blocking receive.
    pub fn irecv(&self, src: i32, tag: i32) -> RecvRequest {
        RecvRequest {
            comm: self.clone(),
            src,
            tag,
            done: None,
        }
    }
}

/// Wait for all requests in a vector (like `MPI_Waitall` for receives).
pub fn wait_all(requests: Vec<RecvRequest>) -> Result<Vec<(RecvStatus, Payload)>, MpiError> {
    requests.into_iter().map(RecvRequest::wait_bytes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::tests::world;
    use crate::comm::{ANY_SOURCE, ANY_TAG};

    #[test]
    fn isend_completes_immediately() {
        let comms = world(2);
        let req = comms[0].isend(1, 1, &[1i32, 2]).unwrap();
        assert!(req.test());
        assert_eq!(req.wait(), 8);
        let (_, data) = comms[1].recv::<i32>(0, 1).unwrap();
        assert_eq!(data, vec![1, 2]);
    }

    #[test]
    fn irecv_test_then_wait() {
        let comms = world(2);
        let mut req = comms[1].irecv(0, 3);
        assert!(!req.test().unwrap(), "nothing sent yet");
        comms[0].send(1, 3, &[9u8]).unwrap();
        // Spin until test observes the message.
        let mut seen = false;
        for _ in 0..200 {
            if req.test().unwrap() {
                seen = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(seen);
        let (status, data) = req.wait::<u8>().unwrap();
        assert_eq!(status.source, 0);
        assert_eq!(data, vec![9]);
    }

    #[test]
    fn wait_without_test_blocks_until_arrival() {
        let comms = world(2);
        let req = comms[1].irecv(ANY_SOURCE, ANY_TAG);
        let sender = {
            let c0 = comms[0].clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                c0.send(1, 2, &[5i32]).unwrap();
            })
        };
        let (status, data) = req.wait::<i32>().unwrap();
        assert_eq!(status.tag, 2);
        assert_eq!(data, vec![5]);
        sender.join().unwrap();
    }

    #[test]
    fn wait_all_collects_in_request_order() {
        let comms = world(3);
        let reqs = vec![comms[0].irecv(1, 1), comms[0].irecv(2, 2)];
        comms[2].send(0, 2, &[22u8]).unwrap();
        comms[1].send(0, 1, &[11u8]).unwrap();
        let results = wait_all(reqs).unwrap();
        assert_eq!(results[0].1.to_vec(), vec![11]);
        assert_eq!(results[1].1.to_vec(), vec![22]);
    }

    #[test]
    fn overlapping_communication_pattern() {
        // Post the receive first, then send — the classic overlap shape.
        let comms = world(2);
        let req = comms[0].irecv(1, 0);
        comms[0].send(1, 0, &[1i32]).unwrap();
        let (_, from_zero) = comms[1].recv::<i32>(0, 0).unwrap();
        assert_eq!(from_zero, vec![1]);
        comms[1].send(0, 0, &[2i32]).unwrap();
        let (_, data) = req.wait::<i32>().unwrap();
        assert_eq!(data, vec![2]);
    }
}
