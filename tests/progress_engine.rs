//! Concurrency stress over the unified progress engine (§4.4).
//!
//! A CORBA-style flow (ORB oneway pushes over Ethernet) and an MPI-style
//! flow (circuit sends over Myrinet) target the *same* receiver node on
//! disjoint channels, so every inbound message of both middlewares drains
//! through that node's single cooperative I/O engine. The paper's claim is
//! that arbitration-layer multiplexing costs nothing measurable: each
//! flow's virtual completion latency when both run together must stay
//! within 10 % of its solo run.
//!
//! The two flows are sized to take about the same virtual span (Ethernet
//! ≈11 MB/s vs Myrinet ≈240 MB/s), so they genuinely overlap instead of
//! one finishing while the other has barely started.

use bytes::Bytes;
use padico::fabric::topology::single_cluster;
use padico::fabric::{FabricKind, Payload};
use padico::mpi::{init_world, Communicator};
use padico::orb::cdr::{CdrReader, CdrWriter};
use padico::orb::orb::{ObjectRef, Orb};
use padico::orb::poa::{Servant, ServerCtx};
use padico::orb::profile::OrbProfile;
use padico::orb::OrbError;
use padico::tm::runtime::PadicoTM;
use padico::tm::selector::FabricChoice;
use std::sync::Arc;

const PIECE: usize = 64 << 10;
/// Ethernet flow: 6 × 64 KiB ≈ 34 ms of virtual time at ~11 MB/s.
const CORBA_PIECES: usize = 6;
/// Myrinet flow: 128 × 64 KiB ≈ 35 ms of virtual time at ~240 MB/s.
const MPI_PIECES: usize = 128;

struct SinkServant;

impl Servant for SinkServant {
    fn repository_id(&self) -> &str {
        "IDL:Stress/Sink:1.0"
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        _reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            "push" => {
                let blob = args.read_octet_seq()?;
                assert_eq!(blob.len(), PIECE, "CORBA piece arrived truncated");
                Ok(())
            }
            "drain" => Ok(()),
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

/// Nodes: 0 = CORBA client, 1 = MPI sender, 2 = shared receiver (ORB
/// server + MPI rank 1) whose single engine carries both flows.
struct Rig {
    tms: Vec<Arc<PadicoTM>>,
    obj: ObjectRef,
    mpi_tx: Communicator,
    mpi_rx: Communicator,
    blob: Bytes,
}

fn rig() -> Rig {
    let (topo, ids) = single_cluster(3);
    let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
    let eth = FabricChoice::Kind(FabricKind::Ethernet);
    let myri = FabricChoice::Kind(FabricKind::Myrinet);
    let client_orb = Orb::start(Arc::clone(&tms[0]), "stress", OrbProfile::omniorb3(), eth).unwrap();
    let server_orb = Orb::start(Arc::clone(&tms[2]), "stress", OrbProfile::omniorb3(), eth).unwrap();
    let obj = client_orb.object_ref(server_orb.activate(Arc::new(SinkServant)));
    obj.request("drain").invoke().unwrap(); // connection warmup
    drop(server_orb); // the accept loop keeps its own Arc
    let group = vec![ids[1], ids[2]];
    let mpi_tx = init_world(&tms[1], "stress", group.clone(), myri).unwrap();
    let mpi_rx = init_world(&tms[2], "stress", group, myri).unwrap();
    Rig {
        tms,
        obj,
        mpi_tx,
        mpi_rx,
        blob: Bytes::from(padico::util::rng::payload(17, "progress", PIECE)),
    }
}

impl Rig {
    /// Run the MPI-style flow; the returned thread yields the flow's
    /// virtual span as seen from the sending node.
    fn run_mpi(&self) -> std::thread::JoinHandle<u64> {
        let rx_comm = self.mpi_rx.clone();
        let rx = std::thread::spawn(move || {
            for _ in 0..MPI_PIECES {
                let (_, piece) = rx_comm.recv_bytes(0, 0).unwrap();
                assert_eq!(piece.len(), PIECE, "MPI piece arrived truncated");
            }
            rx_comm.send_bytes(0, 1, Payload::new()).unwrap(); // fence
        });
        let tx_comm = self.mpi_tx.clone();
        let clock = self.tms[1].clock().share();
        let blob = self.blob.clone();
        std::thread::spawn(move || {
            let start = clock.now();
            for _ in 0..MPI_PIECES {
                tx_comm
                    .send_bytes(1, 0, Payload::from_bytes(blob.clone()))
                    .unwrap();
            }
            tx_comm.recv_bytes(1, 1).unwrap(); // fence
            rx.join().unwrap();
            clock.now() - start
        })
    }

    /// Run the CORBA-style flow; yields the flow's virtual span as seen
    /// from the client node.
    fn run_corba(&self) -> std::thread::JoinHandle<u64> {
        let obj = self.obj.clone();
        let clock = self.tms[0].clock().share();
        let blob = self.blob.clone();
        std::thread::spawn(move || {
            let start = clock.now();
            for _ in 0..CORBA_PIECES {
                obj.request("push")
                    .arg_octet_seq(blob.clone())
                    .invoke_oneway()
                    .unwrap();
            }
            obj.request("drain").invoke().unwrap(); // fence
            clock.now() - start
        })
    }
}

fn within(shared: u64, solo: u64, what: &str) {
    let ratio = shared as f64 / solo as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "{what}: shared span {shared} vs solo {solo} ns ({ratio:.3}×), \
         multiplexing must stay within 10 %"
    );
}

#[test]
fn concurrent_corba_and_mpi_flows_keep_solo_latency() {
    // Solo baselines, each on a fresh grid so clocks start cold.
    let mpi_solo = rig().run_mpi().join().unwrap();
    let corba_solo = rig().run_corba().join().unwrap();

    // Both flows together through the shared receiver's single engine.
    let r = rig();
    let mpi = r.run_mpi();
    let corba = r.run_corba();
    // One coherent engine per node — the receiver multiplexes the ORB's
    // Ethernet traffic and the circuit's Myrinet traffic on one engine,
    // and neither flow gets a private thread. Under the threaded engine
    // that is exactly one I/O thread; under the event engine it is zero
    // (the node is a handler in the world scheduler).
    let want_threads = match padico::tm::EngineKind::default() {
        padico::tm::EngineKind::Threaded => 1,
        padico::tm::EngineKind::EventLoop => 0,
    };
    for tm in &r.tms {
        assert_eq!(
            tm.net().io_thread_count(),
            want_threads,
            "one engine on {}",
            tm.node()
        );
    }
    let mpi_shared = mpi.join().unwrap();
    let corba_shared = corba.join().unwrap();

    within(mpi_shared, mpi_solo, "MPI flow");
    within(corba_shared, corba_solo, "CORBA flow");
}
