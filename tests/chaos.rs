//! Chaos suite: end-to-end fault injection through the whole stack
//! (fabric → PadicoTM → ORB → GridCCM), gated behind the `chaos` cargo
//! feature because the tests deliberately burn wall-clock time waiting
//! out reply deadlines on dropped frames.
//!
//! Everything here is deterministic: fault decisions are a pure function
//! of the plan seed and per-link sequence numbers, and backoff is
//! charged to the virtual clock — so two runs of the same scenario must
//! report identical retry counts and recovery time.
#![cfg(feature = "chaos")]

mod chaos_world;

use chaos_world::{
    assert_shifted, chaos_config, chaos_seed, invoke_shift, run_traced_failover,
    run_traced_failover_with, sci_cluster, shift_handle, strip_bytes,
};
use padico::core::{Grid, GridCcmError};
use padico::fabric::fabric::FabricKind;
use padico::fabric::topology::single_cluster;
use padico::fabric::{FaultPlan, Topology};
use padico::orb::cdr::{CdrReader, CdrWriter};
use padico::orb::profile::OrbProfile;
use padico::orb::{Orb, OrbError, Servant, ServerCtx};
use padico::tm::selector::FabricChoice;
use padico::tm::{
    BreakerPolicy, EngineKind, PadicoTM, RetryPolicy, TmConfig, TmError, TraceSampling,
};
use padico::util::simtime::{MS, SEC};
use padico::util::stats::RecoverySnapshot;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// [`chaos_config`] with small-message coalescing switched on, for the
/// determinism runs that prove batching does not perturb recovery.
fn chaos_config_coalesced() -> TmConfig {
    TmConfig {
        coalesce: Some(padico::tm::CoalescePolicy::default()),
        ..chaos_config()
    }
}

/// The metrics render used in same-seed identity comparisons in THIS
/// binary: the registry minus the per-fabric `bytes.*` counters. The
/// storm scenarios sharing this process race wall-clock deadlines by
/// design, and a deadline-raced stray frame can land in a neighbouring
/// test's registry window — see [`chaos_world::strip_bytes`]. The
/// `engine_equivalence` binary owns its process and compares the full
/// render, byte counters included.
fn stable_metrics_render() -> String {
    strip_bytes(&padico::util::metrics::snapshot().render())
}

/// The acceptance scenario: a GridCCM parallel invocation with 20%
/// seeded frame drops on the socket fabric plus a forced SAN mapping
/// death, completing via socket failover. Returns everything a
/// determinism comparison needs.
fn run_failover_scenario(seed: u64) -> (Vec<f64>, Vec<RecoverySnapshot>, u64) {
    let (topo, ids) = sci_cluster(3);
    let grid = Grid::boot_with_config(
        topo,
        OrbProfile::omniorb3(),
        FabricChoice::Auto,
        chaos_config(),
    )
    .unwrap();
    let par = shift_handle(&grid, 0, &[1, 2]);
    let values: Vec<f64> = (0..96).map(|i| i as f64).collect();

    // Warm-up over the healthy SAN.
    assert_shifted(&invoke_shift(&par, &values, 0.5).unwrap(), &values, 0.5);

    // The SAN mapping hardware dies on the client node and on server
    // replica 0 (mapping tables are per-sender, so this takes out both
    // directions), and the Ethernet fallback drops 20% of frames.
    for fabric in grid.topology().fabrics() {
        match fabric.kind() {
            FabricKind::Sci => {
                fabric.kill_mappings(ids[0]);
                fabric.kill_mappings(ids[1]);
            }
            FabricKind::Ethernet => fabric.set_fault_plan(FaultPlan::drops(seed, 20)),
            _ => {}
        }
    }

    let mut got = Vec::new();
    for round in 1..=5 {
        let delta = f64::from(round) * 2.0;
        got = invoke_shift(&par, &values, delta).unwrap();
        assert_shifted(&got, &values, delta);
    }

    let recovery: Vec<RecoverySnapshot> = (0..grid.len())
        .map(|i| grid.node(i).env.tm.recovery().snapshot())
        .collect();
    let dropped = grid
        .topology()
        .fabrics()
        .iter()
        .map(|f| f.fault_stats().dropped)
        .sum();
    (got, recovery, dropped)
}

#[test]
fn same_seed_chaos_yields_byte_identical_trace_trees() {
    let seed = chaos_seed();
    let r1 = run_traced_failover(seed);
    let r2 = run_traced_failover(seed);
    assert!(!r1.dump.is_empty(), "no spans captured");
    assert!(
        r1.retries > 0,
        "the scenario never hit the retry paths — the comparison proves nothing"
    );
    assert_eq!(r1.dump, r2.dump, "span trees diverged between same-seed runs");
    assert_eq!(
        strip_bytes(&r1.metrics),
        strip_bytes(&r2.metrics),
        "metrics diverged between same-seed runs"
    );
}

#[test]
fn same_seed_chaos_is_byte_identical_with_coalescing_enabled() {
    // Coalescing changes the wire format (frames are batched into
    // envelopes) but must not perturb determinism: two same-seed runs
    // through coalescing links — pooled buffers and all — replay the
    // identical span tree, metrics registry, and recovery counters.
    let seed = chaos_seed();
    let r1 = run_traced_failover_with(seed, chaos_config_coalesced());
    let r2 = run_traced_failover_with(seed, chaos_config_coalesced());
    assert!(!r1.dump.is_empty(), "no spans captured");
    assert!(
        r1.retries > 0,
        "the scenario never hit the retry paths — the comparison proves nothing"
    );
    assert_eq!(
        r1.dump, r2.dump,
        "span trees diverged between same-seed coalesced runs"
    );
    assert_eq!(
        strip_bytes(&r1.metrics),
        strip_bytes(&r2.metrics),
        "metrics diverged between same-seed coalesced runs"
    );
    assert_eq!(r1.retries, r2.retries, "retry counts diverged");
}

#[test]
fn failover_trace_shows_the_san_to_socket_route_change() {
    let run = run_traced_failover(chaos_seed());
    let (warmup, failover) = (run.warmup, run.failover);
    // The healthy invocation rode the SAN; after the mapping death the
    // same invocation path shows up on the socket fabric instead.
    assert!(
        warmup.iter().any(|n| n == "tx:sci"),
        "warm-up never used the SAN: {warmup:?}"
    );
    assert!(
        !warmup.iter().any(|n| n == "tx:ethernet"),
        "warm-up should not touch the fallback: {warmup:?}"
    );
    assert!(
        failover.iter().any(|n| n == "tx:ethernet"),
        "failover never reached the socket fabric: {failover:?}"
    );
}

#[test]
fn san_mapping_death_fails_over_to_socket_with_seeded_drops() {
    let _iso = padico::util::trace::isolated();
    let seed = chaos_seed();
    let (got, recovery, dropped) = run_failover_scenario(seed);

    // The run actually exercised recovery: frames were dropped, the
    // SAN death forced at least one route failover, and retries backed
    // off on the virtual clock.
    assert!(dropped > 0, "no frames dropped");
    let total: u64 = recovery.iter().map(|r| r.total_retries()).sum();
    let failovers: u64 = recovery
        .iter()
        .map(|r| r.route_failovers + r.mapping_remaps)
        .sum();
    let backoff: u64 = recovery.iter().map(|r| r.backoff_ns).sum();
    assert!(total > 0, "no retries recorded: {recovery:?}");
    assert!(failovers > 0, "no failover recorded: {recovery:?}");
    assert!(backoff > 0, "no backoff charged: {recovery:?}");

    // Bounded retries: the e2e recovery fits inside the configured
    // per-layer budgets rather than spiralling.
    assert!(total < 500, "retry storm: {total} retries");

    // Same seed ⇒ identical injected faults ⇒ identical retry counts
    // and recovery time (backoff_ns), per node.
    let (got2, recovery2, dropped2) = run_failover_scenario(seed);
    assert_eq!(got, got2, "results diverged between same-seed runs");
    assert_eq!(dropped, dropped2, "fault streams diverged");
    assert_eq!(
        recovery, recovery2,
        "recovery counters diverged between same-seed runs"
    );
}

#[test]
fn invocation_completes_through_flapping_wan_within_retry_budget() {
    let _iso = padico::util::trace::isolated();
    let (topo, a, b) = padico::fabric::topology::two_clusters_wan(2);
    let grid = Grid::boot_with_config(
        topo,
        OrbProfile::omniorb3(),
        FabricChoice::Auto,
        chaos_config(),
    )
    .unwrap();
    // Client on cluster A, both server replicas across the WAN on
    // cluster B.
    let client_node = 0;
    assert_eq!(grid.node(0).env.tm.node(), a[0]);
    let server_nodes: Vec<usize> = (0..grid.len())
        .filter(|&i| b.contains(&grid.node(i).env.tm.node()))
        .collect();
    let par = shift_handle(&grid, client_node, &server_nodes);
    let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
    assert_shifted(&invoke_shift(&par, &values, 1.0).unwrap(), &values, 1.0);

    // The WAN starts flapping: down for a 5 ms virtual window starting
    // now, and dropping 10% of the frames it does carry.
    let now = grid.node(client_node).env.tm.clock().now();
    for fabric in grid.topology().fabrics() {
        if fabric.kind() == FabricKind::Wan {
            fabric.set_fault_plan(FaultPlan {
                seed: 7,
                drop_pct: 10,
                down_windows: vec![(now, now + 5 * MS)],
                ..FaultPlan::default()
            });
        }
    }

    let got = invoke_shift(&par, &values, -3.0).unwrap();
    assert_shifted(&got, &values, -3.0);

    // The flap was survived by charging backoff to the virtual clock
    // until the window passed — bounded retries, no wall-clock spin.
    let recovery: Vec<RecoverySnapshot> = (0..grid.len())
        .map(|i| grid.node(i).env.tm.recovery().snapshot())
        .collect();
    let total: u64 = recovery.iter().map(|r| r.total_retries()).sum();
    assert!(total > 0, "flap never hit the send path: {recovery:?}");
    assert!(total < 500, "retry storm: {total} retries");
    assert!(
        grid.node(client_node).env.tm.clock().now() >= now + 5 * MS,
        "virtual clock never crossed the flap window"
    );
}

#[test]
fn partitioned_replica_degrades_to_surviving_ranks() {
    let _iso = padico::util::trace::isolated();
    let (topo, ids) = sci_cluster(3);
    let grid = Grid::boot_with_config(
        topo,
        OrbProfile::omniorb3(),
        FabricChoice::Auto,
        chaos_config(),
    )
    .unwrap();
    let par = shift_handle(&grid, 0, &[1, 2]).with_quorum(1).unwrap();
    let values: Vec<f64> = (0..48).map(|i| i as f64).collect();
    assert_shifted(&invoke_shift(&par, &values, 1.0).unwrap(), &values, 1.0);

    // Replica 1 (node 2) falls off the net entirely.
    for fabric in grid.topology().fabrics() {
        fabric.faults().partition_pair(ids[0], ids[2]);
    }

    // The scatter re-routes through the survivor; the data is intact
    // because the client still holds all of it.
    let got = invoke_shift(&par, &values, 4.0).unwrap();
    assert_shifted(&got, &values, 4.0);
    assert_eq!(
        par.dead_replicas().into_iter().collect::<Vec<_>>(),
        vec![1],
        "replica 1 should be marked dead"
    );

    // And it keeps working on the degraded group.
    let got = invoke_shift(&par, &values, 5.0).unwrap();
    assert_shifted(&got, &values, 5.0);
}

#[test]
fn quorum_loss_is_an_error_not_a_hang() {
    let _iso = padico::util::trace::isolated();
    let (topo, ids) = sci_cluster(3);
    let grid = Grid::boot_with_config(
        topo,
        OrbProfile::omniorb3(),
        FabricChoice::Auto,
        chaos_config(),
    )
    .unwrap();
    // Default quorum: all replicas — any death is quorum loss.
    let par = shift_handle(&grid, 0, &[1, 2]);
    let values: Vec<f64> = (0..16).map(|i| i as f64).collect();
    assert_shifted(&invoke_shift(&par, &values, 1.0).unwrap(), &values, 1.0);

    for fabric in grid.topology().fabrics() {
        fabric.faults().partition_pair(ids[0], ids[2]);
    }

    match invoke_shift(&par, &values, 2.0) {
        Err(GridCcmError::QuorumLost { alive: 1, total: 2 }) => {}
        other => panic!("expected QuorumLost, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Overload protection: admission control, circuit breakers, deadlines.
// These scenarios talk straight GIOP through a plain ORB pair rather
// than GridCCM — overload semantics live below the parallel layer.
// ---------------------------------------------------------------------

/// Answers `ok` immediately; `block` parks the dispatch thread (and the
/// admission slot it holds) until the test releases it.
struct Blocker {
    started: mpsc::Sender<()>,
    release: std::sync::Mutex<mpsc::Receiver<()>>,
}

impl Servant for Blocker {
    fn repository_id(&self) -> &str {
        "IDL:Chaos/Blocker:1.0"
    }

    fn dispatch(
        &self,
        op: &str,
        _args: &mut CdrReader,
        reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match op {
            "block" => {
                self.started.send(()).ok();
                self.release.lock().unwrap().recv().ok();
                Ok(())
            }
            "ok" => {
                reply.write_i32(1);
                Ok(())
            }
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

/// A plain ORB pair (client on node 0, server on node 1) booted with
/// explicit runtime knobs, plus the handles the overload scenarios
/// need: the per-node runtimes (clocks), the topology (fabrics), and
/// the node ids (partitions).
#[allow(clippy::type_complexity)]
fn orb_pair_with(
    cfg: TmConfig,
) -> (
    Arc<Orb>,
    Arc<Orb>,
    Vec<Arc<PadicoTM>>,
    Arc<Topology>,
    Vec<padico::util::ids::NodeId>,
) {
    let (topo, ids) = single_cluster(2);
    let topo = Arc::new(topo);
    let tms = PadicoTM::boot_all_with_config(Arc::clone(&topo), cfg).unwrap();
    let client = Orb::start(
        Arc::clone(&tms[0]),
        "chaos",
        OrbProfile::omniorb3(),
        FabricChoice::Auto,
    )
    .unwrap();
    let server = Orb::start(
        Arc::clone(&tms[1]),
        "chaos",
        OrbProfile::omniorb3(),
        FabricChoice::Auto,
    )
    .unwrap();
    (client, server, tms, topo, ids)
}

/// Wall-clock wait until the server holds no admission slot: dispatch
/// threads release their permit just *after* the reply is written, so a
/// client that wants deterministic admission decisions for its next
/// request has to wait out that sliver.
fn await_quiescent(server: &Orb) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.admission_inflight() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "server dispatches never drained"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The overload storm: a budget of 2 fully occupied by parked
/// dispatches, then six probes that must all be shed immediately with
/// the retryable TRANSIENT. Returns the canonical span dump (blocker
/// traces excluded — their dispatch spans end on wall-clock release),
/// the rendered metrics registry, and the inflight high-water mark.
fn run_overload_storm() -> (String, String, u32) {
    let _iso = padico::util::trace::isolated();
    let cfg = TmConfig {
        default_deadline: Duration::from_millis(150),
        connect_timeout: Duration::from_millis(500),
        retry: RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        },
        coalesce: None,
        inflight_budget: Some(2),
        breaker: None,
        engine: EngineKind::default(),
        trace_sampling: TraceSampling::Always,
    };
    let (client, server, _tms, _topo, _ids) = orb_pair_with(cfg);
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let ior = server.activate(Arc::new(Blocker {
        started: started_tx,
        release: std::sync::Mutex::new(release_rx),
    }));
    let obj = client.object_ref(ior);
    let clock = client.tm().clock();
    let node = client.tm().node().0;

    // Warm-up proves the endpoint works, then drains so its permit
    // cannot race the blockers below. Every traced step runs under an
    // explicit root span with a fixed trace id — spans only record
    // inside an ambient trace, and fixed ids keep the dump replayable.
    {
        let _root = padico::util::span::root(clock, node, 1, "chaos.storm", "warmup");
        obj.request("ok").invoke().unwrap();
    }
    await_quiescent(&server);

    // Two oneway blockers occupy the whole budget, started strictly in
    // sequence so the admission order is deterministic. No root span:
    // their dispatches end on wall-clock release, the one timestamp the
    // virtual clock cannot pin down.
    for _ in 0..2 {
        obj.request("block").invoke_oneway().unwrap();
        started_rx.recv().unwrap();
    }

    // Six probes: each must be shed *immediately* (never queued) with
    // the retryable TRANSIENT. Probes are not idempotent, so each is
    // exactly one wire attempt and the shed counter moves by exactly 1.
    for i in 0..6 {
        let _root =
            padico::util::span::root(clock, node, 10 + i, "chaos.storm", format!("probe:{i}"));
        let err = obj.request("ok").invoke().unwrap_err();
        assert!(
            matches!(&err, OrbError::Transient(TmError::Overloaded(_))),
            "probe {i}: want a shed TRANSIENT, got {err:?}"
        );
        assert!(err.is_retryable(), "a shed is retryable by contract");
    }

    // Release the parked dispatches; once the slots drain the endpoint
    // must serve again.
    release_tx.send(()).unwrap();
    release_tx.send(()).unwrap();
    await_quiescent(&server);
    {
        let _root = padico::util::span::root(clock, node, 100, "chaos.storm", "recovery");
        obj.request("ok").invoke().unwrap();
    }

    let counters = padico::util::metrics::snapshot().counters;
    assert_eq!(
        counters.get("orb.admission.shed"),
        Some(&6),
        "exactly the six probes are shed: {counters:?}"
    );
    assert_eq!(
        counters.get("orb.admission.admitted"),
        Some(&4),
        "warm-up + two blockers + recovery are admitted: {counters:?}"
    );
    let peak = server.admission_inflight_peak();
    assert!(peak <= 2, "inflight exceeded the budget: peak {peak}");
    assert_eq!(peak, 2, "the blockers must have filled the budget");

    // CI's failure path sets CHAOS_FLIGHT_OUT and re-runs the suite to
    // capture the full flight-recorder export (spans + telemetry
    // windows as a Perfetto trace) as a build artifact for offline
    // triage of the failing seed. Written here, while this scenario's
    // isolated registry window is still open.
    if let Ok(path) = std::env::var("CHAOS_FLIGHT_OUT") {
        let json = padico::core::observability::ObservabilitySnapshot::capture()
            .flight_recorder_json();
        std::fs::write(&path, json).expect("write CHAOS_FLIGHT_OUT");
    }

    // The untraced blockers recorded nothing, so the dump covers the
    // warm-up, all six sheds, and the recovery — every deterministic
    // trace of the scenario.
    (
        padico::util::span::canonical_dump(&padico::util::span::snapshot()),
        stable_metrics_render(),
        peak,
    )
}

#[test]
fn overload_storm_sheds_within_budget_and_replays_byte_identically() {
    let (dump1, metrics1, peak1) = run_overload_storm();
    let (dump2, metrics2, peak2) = run_overload_storm();
    assert!(!dump1.is_empty(), "no spans captured");
    assert_eq!(dump1, dump2, "shed span trees diverged between runs");
    assert_eq!(
        metrics1, metrics2,
        "admission/shed counters diverged between runs"
    );
    assert_eq!(peak1, peak2, "inflight peaks diverged between runs");
    // CI's multi-seed matrix sets CHAOS_METRICS_OUT to archive the
    // counter snapshot per seed, so a diverging future run can be
    // diffed against the recorded baseline offline.
    if let Ok(path) = std::env::var("CHAOS_METRICS_OUT") {
        let body = format!(
            "# chaos seed {} overload storm\n{metrics1}peak_inflight = {peak1}\n",
            chaos_seed()
        );
        std::fs::write(&path, body).expect("write CHAOS_METRICS_OUT");
    }
}

/// The breaker scenario end to end: a partition trips the per-route
/// breakers, an open breaker fails fast without touching the wire, and
/// after the route heals the half-open probe closes it again. Returns
/// the canonical span dump and the rendered metrics registry for the
/// byte-identity comparison.
fn run_breaker_storm() -> (String, String) {
    let _iso = padico::util::trace::isolated();
    let cooldown = 30 * SEC;
    let cfg = TmConfig {
        default_deadline: Duration::from_millis(150),
        connect_timeout: Duration::from_millis(500),
        retry: RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        },
        coalesce: None,
        inflight_budget: None,
        breaker: Some(BreakerPolicy {
            trip_after: 2,
            cooldown,
        }),
        engine: EngineKind::default(),
        trace_sampling: TraceSampling::Always,
    };
    let (client, server, tms, topo, ids) = orb_pair_with(cfg);
    let (_tx, rx) = mpsc::channel();
    let (started_tx, _started_rx) = mpsc::channel();
    let obj = client.object_ref(server.activate(Arc::new(Blocker {
        started: started_tx,
        release: std::sync::Mutex::new(rx),
    })));
    let clock = client.tm().clock();
    let node = client.tm().node().0;

    // Warm-up over healthy routes. As in the storm scenario, every
    // step runs under a fixed-trace-id root span so the breaker's
    // transition spans land in a replayable dump.
    {
        let _root = padico::util::span::root(clock, node, 1, "chaos.breaker", "warmup");
        obj.request("ok").invoke().unwrap();
    }

    // Every fabric partitions the pair: all sends are refused at the
    // fabric, each refusal counts towards the breaker trip.
    for fabric in topo.fabrics() {
        fabric.faults().partition_pair(ids[0], ids[1]);
    }
    let wire_faults = |topo: &Topology| -> u64 {
        topo.fabrics()
            .iter()
            .map(|f| {
                let s = f.fault_stats();
                s.dropped + s.link_down_refusals + s.mapping_refusals
            })
            .sum()
    };

    // Failing invokes until every route the selector can reach has
    // tripped: once nothing reaches the wire any more, the fabric fault
    // counters freeze.
    let mut seen = Vec::new();
    for i in 0..5u64 {
        let _root =
            padico::util::span::root(clock, node, 10 + i, "chaos.breaker", format!("trip:{i}"));
        assert!(
            obj.request("ok").idempotent().invoke().is_err(),
            "a fully partitioned invoke cannot succeed"
        );
        drop(_root);
        seen.push(wire_faults(&topo));
        if seen.len() >= 2 && seen[seen.len() - 1] == seen[seen.len() - 2] {
            break;
        }
    }
    assert!(
        seen.len() >= 2 && seen[seen.len() - 1] == seen[seen.len() - 2],
        "routes never all tripped; fabric fault counts kept moving: {seen:?}"
    );

    let counters = padico::util::metrics::snapshot().counters;
    assert!(
        counters.get("tm.breaker.opened").copied().unwrap_or(0) >= 1,
        "the breaker never tripped: {counters:?}"
    );
    let fast_before = counters
        .get("tm.breaker.fast_failures")
        .copied()
        .unwrap_or(0);
    assert!(fast_before >= 1, "no fast failures recorded while open");

    // While open the route fails fast: the whole invoke errors without
    // a single frame reaching any fabric.
    let wire_before = wire_faults(&topo);
    {
        let _root = padico::util::span::root(clock, node, 50, "chaos.breaker", "while-open");
        assert!(
            obj.request("ok").idempotent().invoke().is_err(),
            "the breaker is open — this cannot succeed"
        );
    }
    assert_eq!(
        wire_faults(&topo),
        wire_before,
        "an open breaker must not put anything on the wire"
    );
    let counters = padico::util::metrics::snapshot().counters;
    assert!(
        counters
            .get("tm.breaker.fast_failures")
            .copied()
            .unwrap_or(0)
            > fast_before,
        "the open breaker did not fail fast: {counters:?}"
    );

    // The route heals and the cooldown elapses on the virtual clock:
    // the next send is the half-open probe, and its success closes the
    // breaker — the invoke goes through end to end.
    for fabric in topo.fabrics() {
        fabric.faults().heal_pair(ids[0], ids[1]);
    }
    tms[0].clock().advance(cooldown + SEC);
    {
        let _root = padico::util::span::root(clock, node, 100, "chaos.breaker", "recovery");
        obj.request("ok").idempotent().invoke().unwrap();
    }
    let counters = padico::util::metrics::snapshot().counters;
    assert!(
        counters.get("tm.breaker.probes").copied().unwrap_or(0) >= 1,
        "recovery never went through a half-open probe: {counters:?}"
    );
    assert!(
        counters.get("tm.breaker.closed").copied().unwrap_or(0) >= 1,
        "the probe's success never closed the breaker: {counters:?}"
    );

    (
        padico::util::span::canonical_dump(&padico::util::span::snapshot()),
        stable_metrics_render(),
    )
}

#[test]
fn breaker_trips_fails_fast_and_recovers_byte_identically() {
    let (dump1, metrics1) = run_breaker_storm();
    let (dump2, metrics2) = run_breaker_storm();
    assert!(!dump1.is_empty(), "no spans captured");
    assert_eq!(dump1, dump2, "breaker span trees diverged between runs");
    assert_eq!(
        metrics1, metrics2,
        "breaker counters diverged between runs"
    );
}

#[test]
fn expired_deadline_short_circuits_server_dispatch() {
    let _iso = padico::util::trace::isolated();
    let (client, server, tms, _topo, _ids) = orb_pair_with(chaos_config());
    let (started_tx, _started_rx) = mpsc::channel();
    let (_tx, rx) = mpsc::channel();
    let obj = client.object_ref(server.activate(Arc::new(Blocker {
        started: started_tx,
        release: std::sync::Mutex::new(rx),
    })));

    // Warm-up establishes the connection while the clocks agree.
    obj.request("ok").invoke().unwrap();
    await_quiescent(&server);

    // The server's clock races 10 virtual seconds ahead: any deadline
    // the client can stamp (now + 150 ms) has already expired when the
    // request arrives, so the server must refuse to burn dispatch work
    // and answer the typed TIMEOUT instead.
    tms[1].clock().advance(10 * SEC);
    let err = obj.request("ok").invoke().unwrap_err();
    assert!(
        matches!(&err, OrbError::DeadlineExceeded(_)),
        "want the typed TIMEOUT, got {err:?}"
    );
    assert!(!err.is_retryable(), "an expired deadline is terminal");
    let counters = padico::util::metrics::snapshot().counters;
    assert_eq!(
        counters.get("orb.deadline.expired_server"),
        Some(&1),
        "exactly one dispatch short-circuited: {counters:?}"
    );

    // The refusal reply carried the server's clock back (causal merge on
    // receive), so the client's next deadline is stamped far enough in
    // the future and the call goes through — no poison, no retry storm.
    obj.request("ok").invoke().unwrap();
    let counters = padico::util::metrics::snapshot().counters;
    assert_eq!(
        counters.get("orb.deadline.expired_server"),
        Some(&1),
        "the recovered call must not trip the deadline check again"
    );
}

#[test]
fn mid_pipeline_link_down_fails_in_flight_and_retries_queued() {
    // A pipeline with requests in two states when the link dies:
    // *in flight* (delivered, parked in a server dispatch, reply not yet
    // sent) and *queued* (submitted into the dead link, never delivered).
    // The mux must fail exactly the in-flight handles — their replies
    // died on the wire and non-idempotent work must not be re-issued —
    // while the queued idempotent ones ride the retry loop onto a fresh
    // connection once the link heals.
    let _iso = padico::util::trace::isolated();
    let (client, server, _tms, topo, ids) = orb_pair_with(chaos_config());
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let ior = server.activate(Arc::new(Blocker {
        started: started_tx,
        release: std::sync::Mutex::new(release_rx),
    }));
    let obj = client.object_ref(ior.clone());

    obj.request("ok").invoke().unwrap(); // connection warm-up
    await_quiescent(&server);

    // Three non-idempotent requests reach the server and park mid-dispatch.
    let in_flight: Vec<_> = (0..3).map(|_| obj.request("block").submit()).collect();
    for _ in 0..3 {
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    }

    // The link dies in both directions, mid-pipeline.
    let fabrics = topo.fabrics_between(ids[0], ids[1]);
    for f in &fabrics {
        f.faults().partition_pair(ids[0], ids[1]);
    }

    // Four idempotent requests submitted into the dead link: each send
    // fails with the transient LINK_DOWN and parks — the retry decision
    // belongs to wait().
    let queued: Vec<_> = (0..4)
        .map(|_| obj.request("ok").idempotent().submit())
        .collect();

    // Release the blockers; their replies die on the partitioned link.
    for _ in 0..3 {
        release_tx.send(()).unwrap();
    }
    await_quiescent(&server);

    // Heal. The queued handles must now retry onto a fresh connection
    // and succeed — every one of them recording at least one retry.
    for f in &fabrics {
        f.faults().heal_pair(ids[0], ids[1]);
    }
    let before = client.tm().recovery().snapshot().giop_retries;
    for q in queued {
        let mut reply = q.wait().unwrap();
        assert_eq!(reply.read_i32().unwrap(), 1, "queued request lost its reply");
    }
    let retries = client.tm().recovery().snapshot().giop_retries - before;
    assert!(
        retries >= 4,
        "each queued request must have retried its dead-link send, saw {retries}"
    );

    // The in-flight handles fail: their replies are gone, and without
    // the idempotent marker the lost exchange must not be re-issued —
    // the reply deadline surfaces as the retryable-but-unretried
    // transport error.
    for h in in_flight {
        let err = h.wait().unwrap_err();
        assert!(
            err.is_transport(),
            "an in-flight handle must fail at the transport layer: {err:?}"
        );
    }
    assert_eq!(
        client.tm().recovery().snapshot().giop_retries - before,
        retries,
        "non-idempotent in-flight requests must not be re-issued"
    );
    assert_eq!(
        client.pending_request_count(ior.node, &ior.endpoint),
        0,
        "failed handles must not leak pending-table entries"
    );
}
