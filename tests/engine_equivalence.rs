//! Engine-equivalence suite: the threaded and discrete-event progress
//! engines must replay the same seeded chaos world byte-identically.
//!
//! This lives in its OWN test binary — one test, one process — on
//! purpose: the comparison includes the per-fabric `bytes.*` counters,
//! and those survive only in a process that runs nothing racing
//! wall-clock deadlines. The storm scenarios in the `chaos` binary do
//! exactly that (a server's reply can hit the wire just as the client
//! gives up), and such a stray frame lands in whatever isolated registry
//! window happens to be open — possibly this test's. The failover
//! scenario itself is fully quiesced between invocations, so alone in a
//! process its byte tallies are a pure function of the seed and the
//! engine.
#![cfg(feature = "chaos")]

mod chaos_world;

use chaos_world::{chaos_config, chaos_seed, run_traced_failover_with, strip_sched};
use padico::tm::{EngineKind, TmConfig, TraceSampling};

#[test]
fn threaded_and_event_engines_replay_the_same_chaos_world_identically() {
    // The engine-equivalence guarantee: the same seeded chaos scenario
    // driven by per-node I/O threads and by the discrete-event world
    // scheduler produces the identical trace tree, recovery counters,
    // and metrics registry — byte counters included.
    let seed = chaos_seed();
    let threaded = TmConfig {
        engine: EngineKind::Threaded,
        ..chaos_config()
    };
    let event = TmConfig {
        engine: EngineKind::EventLoop,
        ..chaos_config()
    };
    let t = run_traced_failover_with(seed, threaded);
    let e = run_traced_failover_with(seed, event);
    assert!(!t.dump.is_empty(), "no spans captured");
    assert_eq!(t.dump, e.dump, "span trees diverged across engines");
    assert_eq!(t.warmup, e.warmup, "warm-up routes diverged across engines");
    assert_eq!(t.failover, e.failover, "failover routes diverged across engines");
    assert_eq!(t.retries, e.retries, "recovery counters diverged across engines");
    // Full metrics registry, per-fabric bytes.* included: with stream
    // drop abortive under both engines, the two worlds must put exactly
    // the same frames on the wire.
    assert!(
        t.metrics.contains("counter bytes."),
        "the render must include the byte counters"
    );
    assert_eq!(t.metrics, e.metrics, "metrics diverged across engines");
    // And the event engine's own same-seed identity on top.
    let e2 = run_traced_failover_with(seed, event);
    assert_eq!(e.dump, e2.dump, "event-engine span trees diverged");
    assert_eq!(e.metrics, e2.metrics, "event-engine metrics diverged");
}

#[test]
fn telemetry_windows_and_sampled_traces_replay_identically_across_engines() {
    // The flight-recorder additions ride the same determinism contract:
    // virtual-time telemetry windows fold identically under both
    // engines (minus the `sched.*` lane series, which sample wall-clock
    // batch composition and exist only on the event engine), and
    // head-based trace sampling keeps the identical *subset* of causal
    // trees — the sampled set is a pure function of the deterministic
    // trace ids, not of thread scheduling.
    let seed = chaos_seed();
    let threaded = TmConfig {
        engine: EngineKind::Threaded,
        ..chaos_config()
    };
    let event = TmConfig {
        engine: EngineKind::EventLoop,
        ..chaos_config()
    };

    // Full-tracing runs: the telemetry windows must match byte for byte
    // once the wall-clock-sampled sched.* series are stripped.
    let t = run_traced_failover_with(seed, threaded.clone());
    let e = run_traced_failover_with(seed, event.clone());
    assert!(
        t.timeseries.contains("timeseries latency."),
        "span latencies must feed the vt windows: {}",
        t.timeseries
    );
    assert_eq!(
        strip_sched(&t.timeseries),
        strip_sched(&e.timeseries),
        "telemetry windows diverged across engines"
    );
    // The threaded engine has no world scheduler, so no lane series.
    assert!(!t.timeseries.contains("timeseries sched."));

    // Sampled runs: SampleEvery(2) must keep a strict, identical subset
    // of the four invocation trees under both engines.
    let sampled = |engine: EngineKind| TmConfig {
        engine,
        trace_sampling: TraceSampling::SampleEvery(2),
        ..chaos_config()
    };
    let ts = run_traced_failover_with(seed, sampled(EngineKind::Threaded));
    let es = run_traced_failover_with(seed, sampled(EngineKind::EventLoop));
    assert!(ts.roots > 0, "SampleEvery(2) kept no invocation trees");
    assert_eq!(ts.roots, es.roots, "sampled tree count diverged");
    assert_eq!(ts.dump, es.dump, "sampled span trees diverged across engines");
    assert!(
        ts.dump.len() < t.dump.len(),
        "a sampled dump must be strictly smaller than the full dump"
    );
    assert_eq!(
        strip_sched(&ts.timeseries),
        strip_sched(&es.timeseries),
        "sampled-run telemetry windows diverged across engines"
    );
}
