//! Engine-equivalence suite: the threaded and discrete-event progress
//! engines must replay the same seeded chaos world byte-identically.
//!
//! This lives in its OWN test binary — one test, one process — on
//! purpose: the comparison includes the per-fabric `bytes.*` counters,
//! and those survive only in a process that runs nothing racing
//! wall-clock deadlines. The storm scenarios in the `chaos` binary do
//! exactly that (a server's reply can hit the wire just as the client
//! gives up), and such a stray frame lands in whatever isolated registry
//! window happens to be open — possibly this test's. The failover
//! scenario itself is fully quiesced between invocations, so alone in a
//! process its byte tallies are a pure function of the seed and the
//! engine.
#![cfg(feature = "chaos")]

mod chaos_world;

use chaos_world::{chaos_config, chaos_seed, run_traced_failover_with};
use padico::tm::{EngineKind, TmConfig};

#[test]
fn threaded_and_event_engines_replay_the_same_chaos_world_identically() {
    // The engine-equivalence guarantee: the same seeded chaos scenario
    // driven by per-node I/O threads and by the discrete-event world
    // scheduler produces the identical trace tree, recovery counters,
    // and metrics registry — byte counters included.
    let seed = chaos_seed();
    let threaded = TmConfig {
        engine: EngineKind::Threaded,
        ..chaos_config()
    };
    let event = TmConfig {
        engine: EngineKind::EventLoop,
        ..chaos_config()
    };
    let t = run_traced_failover_with(seed, threaded);
    let e = run_traced_failover_with(seed, event);
    assert!(!t.dump.is_empty(), "no spans captured");
    assert_eq!(t.dump, e.dump, "span trees diverged across engines");
    assert_eq!(t.warmup, e.warmup, "warm-up routes diverged across engines");
    assert_eq!(t.failover, e.failover, "failover routes diverged across engines");
    assert_eq!(t.retries, e.retries, "recovery counters diverged across engines");
    // Full metrics registry, per-fabric bytes.* included: with stream
    // drop abortive under both engines, the two worlds must put exactly
    // the same frames on the wire.
    assert!(
        t.metrics.contains("counter bytes."),
        "the render must include the byte counters"
    );
    assert_eq!(t.metrics, e.metrics, "metrics diverged across engines");
    // And the event engine's own same-seed identity on top.
    let e2 = run_traced_failover_with(seed, event);
    assert_eq!(e.dump, e2.dump, "event-engine span trees diverged");
    assert_eq!(e.metrics, e2.metrics, "event-engine metrics diverged");
}
