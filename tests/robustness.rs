//! Failure-injection integration tests: the stack must degrade with
//! errors, not hangs or corruption.

use bytes::Bytes;
use padico::ccm::assembly::Assembly;
use padico::ccm::package::Package;
use padico::ccm::CcmError;
use padico::core::Grid;
use padico::fabric::topology::single_cluster;
use padico::orb::cdr::{CdrReader, CdrWriter};
use padico::orb::orb::Orb;
use padico::orb::poa::{Servant, ServerCtx};
use padico::orb::profile::OrbProfile;
use padico::orb::OrbError;
use padico::tm::runtime::PadicoTM;
use padico::tm::selector::FabricChoice;
use std::sync::Arc;

struct FlakyServant;

impl Servant for FlakyServant {
    fn repository_id(&self) -> &str {
        "IDL:Rb/Flaky:1.0"
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            "ok" => {
                reply.write_i32(1);
                Ok(())
            }
            "panic" => panic!("deliberate servant panic"),
            "garbage_args" => {
                // Reads more than the request carries.
                let _ = args.read_f64_seq()?;
                Ok(())
            }
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

fn orb_pair() -> (Arc<Orb>, Arc<Orb>) {
    let (topo, _ids) = single_cluster(2);
    let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
    (
        Orb::start(
            Arc::clone(&tms[0]),
            "rb",
            OrbProfile::omniorb3(),
            FabricChoice::Auto,
        )
        .unwrap(),
        Orb::start(
            Arc::clone(&tms[1]),
            "rb",
            OrbProfile::omniorb3(),
            FabricChoice::Auto,
        )
        .unwrap(),
    )
}

#[test]
fn servant_panic_becomes_system_exception_and_connection_survives() {
    let (client, server) = orb_pair();
    let obj = client.object_ref(server.activate(Arc::new(FlakyServant)));
    let err = obj.request("panic").invoke().unwrap_err();
    assert!(
        matches!(&err, OrbError::System(msg) if msg.contains("panicked")),
        "{err:?}"
    );
    // The connection (and the server) keep working afterwards.
    let mut reply = obj.request("ok").invoke().unwrap();
    assert_eq!(reply.read_i32().unwrap(), 1);
}

#[test]
fn short_argument_reads_become_marshal_errors() {
    let (client, server) = orb_pair();
    let obj = client.object_ref(server.activate(Arc::new(FlakyServant)));
    let err = obj.request("garbage_args").invoke().unwrap_err();
    assert!(matches!(&err, OrbError::System(msg) if msg.contains("MARSHAL")));
    // Still alive.
    obj.request("ok").invoke().unwrap();
}

#[test]
fn dropped_connection_is_reestablished_on_next_call() {
    let (client, server) = orb_pair();
    let ior = server.activate(Arc::new(FlakyServant));
    let obj = client.object_ref(ior.clone());
    obj.request("ok").invoke().unwrap();
    // Simulate a connection failure by evicting the cached connection.
    client.drop_connection(ior.node, &ior.endpoint);
    let mut reply = obj.request("ok").invoke().unwrap();
    assert_eq!(reply.read_i32().unwrap(), 1, "fresh connection works");
}

#[test]
fn concurrent_clients_multiplex_one_connection() {
    // 32 threads on one node invoking the same remote object: all replies
    // must route back to their own requesters.
    let (client, server) = orb_pair();

    struct Doubler;
    impl Servant for Doubler {
        fn repository_id(&self) -> &str {
            "IDL:Rb/Doubler:1.0"
        }
        fn dispatch(
            &self,
            _op: &str,
            args: &mut CdrReader,
            reply: &mut CdrWriter,
            _ctx: &ServerCtx,
        ) -> Result<(), OrbError> {
            let v = args.read_i32()?;
            reply.write_i32(v * 2);
            Ok(())
        }
    }

    let obj = client.object_ref(server.activate(Arc::new(Doubler)));
    let handles: Vec<_> = (0..32)
        .map(|i| {
            let obj = obj.clone();
            std::thread::spawn(move || {
                for k in 0..10 {
                    let v = i * 100 + k;
                    let mut reply = obj.request("x2").arg_i32(v).invoke().unwrap();
                    assert_eq!(reply.read_i32().unwrap(), v * 2, "cross-routed reply");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn bad_assembly_and_missing_factories_fail_cleanly() {
    let grid = Grid::single_cluster(2).unwrap();
    // Package exists but its factory symbol is not registered anywhere.
    let assembly =
        Assembly::parse(r#"<assembly name="x"><component id="c" package="p"/></assembly>"#)
            .unwrap();
    let err = grid
        .deployer()
        .deploy(&assembly, &[Package::new("p", "1.0", "unregistered_symbol")])
        .unwrap_err();
    assert!(
        matches!(&err, CcmError::Remote(msg) if msg.contains("unregistered_symbol")),
        "{err:?}"
    );
    // Malformed assembly XML.
    assert!(Assembly::parse("<assembly name='x'><component/></assembly>").is_err());
    assert!(Assembly::parse("not xml at all").is_err());
    // Unknown placement node.
    grid.register_factory("mk", |_env| {
        unreachable!("placement fails before instantiation")
    });
    let ghost = Assembly::parse(
        r#"<assembly name="g">
             <component id="c" package="p"><placement node="n99"/></component>
           </assembly>"#,
    )
    .unwrap();
    let err = grid
        .deployer()
        .deploy(&ghost, &[Package::new("p", "1.0", "mk")])
        .unwrap_err();
    assert!(matches!(err, CcmError::Deployment(_)));
}

#[test]
fn oversized_and_empty_payloads_roundtrip() {
    let (client, server) = orb_pair();

    struct EchoLen;
    impl Servant for EchoLen {
        fn repository_id(&self) -> &str {
            "IDL:Rb/EchoLen:1.0"
        }
        fn dispatch(
            &self,
            _op: &str,
            args: &mut CdrReader,
            reply: &mut CdrWriter,
            _ctx: &ServerCtx,
        ) -> Result<(), OrbError> {
            let blob = args.read_octet_seq()?;
            reply.write_u64(blob.len() as u64);
            Ok(())
        }
    }

    let obj = client.object_ref(server.activate(Arc::new(EchoLen)));
    for size in [0usize, 1, 4095, 4096, 4097, 8 << 20] {
        let mut reply = obj
            .request("len")
            .arg_octet_seq(Bytes::from(vec![0u8; size]))
            .invoke()
            .unwrap();
        assert_eq!(reply.read_u64().unwrap(), size as u64, "size {size}");
    }
}

/// An ORB pair with a tight end-to-end deadline and a generous retry
/// budget, plus the fabrics between the two nodes so tests can arm
/// fault plans.
fn deadline_pair(
    deadline: std::time::Duration,
) -> (Arc<Orb>, Arc<Orb>, Vec<Arc<padico::fabric::SimFabric>>) {
    let (topo, ids) = single_cluster(2);
    let topo = Arc::new(topo);
    let fabrics = topo.fabrics_between(ids[0], ids[1]);
    let cfg = padico::tm::TmConfig {
        default_deadline: deadline,
        connect_timeout: std::time::Duration::from_millis(50),
        retry: padico::tm::RetryPolicy {
            max_attempts: 6,
            ..Default::default()
        },
        ..Default::default()
    };
    let tms = PadicoTM::boot_all_with_config(topo, cfg).unwrap();
    let client = Orb::start(
        Arc::clone(&tms[0]),
        "rb",
        OrbProfile::omniorb3(),
        FabricChoice::Auto,
    )
    .unwrap();
    let server = Orb::start(
        Arc::clone(&tms[1]),
        "rb",
        OrbProfile::omniorb3(),
        FabricChoice::Auto,
    )
    .unwrap();
    (client, server, fabrics)
}

#[test]
fn deadline_expiring_mid_backoff_stops_retries_and_leaks_nothing() {
    // 2 ms of virtual budget against a retry policy whose backoff series
    // (50 µs, 200 µs, 800 µs, 3.2 ms, …) overruns it mid-sequence: the
    // retry loop must stop with the typed TIMEOUT as soon as the budget
    // is spent — well before the 6-attempt policy limit — and leave no
    // pending-map entry behind.
    let (client, server, fabrics) = deadline_pair(std::time::Duration::from_millis(2));
    let ior = server.activate(Arc::new(FlakyServant));
    let obj = client.object_ref(ior.clone());
    obj.request("ok").invoke().unwrap(); // warm-up

    // From here on every frame is dropped: each attempt times out and
    // the backoff between attempts burns the remaining virtual budget.
    for f in &fabrics {
        f.set_fault_plan(padico::fabric::FaultPlan::drops(1, 100));
    }
    let before = client.tm().recovery().snapshot().giop_retries;
    let err = obj.request("ok").idempotent().invoke().unwrap_err();
    assert!(
        matches!(err, OrbError::DeadlineExceeded(_)),
        "an expired budget must surface as the typed TIMEOUT, got {err}"
    );
    assert!(!err.is_retryable(), "an expired deadline is terminal");
    let retries = client.tm().recovery().snapshot().giop_retries - before;
    assert!(
        retries >= 1,
        "the deadline must expire mid-retry, not before the first attempt"
    );
    assert!(
        retries < 5,
        "the loop must stop when the budget is gone, not ride out all 6 \
         attempts; recorded {retries} retries"
    );
    assert_eq!(
        client.pending_request_count(ior.node, &ior.endpoint),
        0,
        "abandoned attempts must not leak pending-map entries"
    );
}

#[test]
fn cancel_request_suppresses_the_late_reply() {
    use std::sync::mpsc;

    // A servant that blocks until the test releases it, so the client's
    // reply deadline reliably expires first.
    struct Blocker {
        started: mpsc::Sender<()>,
        release: std::sync::Mutex<mpsc::Receiver<()>>,
    }
    impl Servant for Blocker {
        fn repository_id(&self) -> &str {
            "IDL:Rb/Blocker:1.0"
        }
        fn dispatch(
            &self,
            op: &str,
            _args: &mut CdrReader,
            reply: &mut CdrWriter,
            _ctx: &ServerCtx,
        ) -> Result<(), OrbError> {
            match op {
                "block" => {
                    self.started.send(()).ok();
                    self.release.lock().unwrap().recv().ok();
                    reply.write_i32(7);
                    Ok(())
                }
                "ok" => {
                    reply.write_i32(1);
                    Ok(())
                }
                other => Err(OrbError::BadOperation(other.into())),
            }
        }
    }

    let (client, server, _fabrics) = deadline_pair(std::time::Duration::from_millis(20));
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let ior = server.activate(Arc::new(Blocker {
        started: started_tx,
        release: std::sync::Mutex::new(release_rx),
    }));
    let obj = client.object_ref(ior.clone());

    // The invocation gives up after its 20 ms reply deadline and chases
    // the abandoned request with a best-effort CancelRequest.
    let err = obj.request("block").invoke().unwrap_err();
    assert!(err.is_transport(), "abandoned exchange is transport-level: {err}");
    started_rx.recv().unwrap(); // the dispatch definitely started
    assert_eq!(client.pending_request_count(ior.node, &ior.endpoint), 0);

    // Give the cancel frame time to reach the server's connection loop,
    // then let the dispatch finish: its reply must be suppressed.
    std::thread::sleep(std::time::Duration::from_millis(50));
    release_tx.send(()).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.cancels_suppressed() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "server never suppressed the cancelled reply"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // The connection survived the whole episode.
    let mut reply = obj.request("ok").invoke().unwrap();
    assert_eq!(reply.read_i32().unwrap(), 1);
}

mod pipelining {
    use super::*;
    use proptest::prelude::*;

    /// Replies after a wall-clock delay derived from the argument, so a
    /// batch of pipelined requests completes in an order unrelated to
    /// submission order.
    struct Scramble;
    impl Servant for Scramble {
        fn repository_id(&self) -> &str {
            "IDL:Rb/Scramble:1.0"
        }
        fn dispatch(
            &self,
            _op: &str,
            args: &mut CdrReader,
            reply: &mut CdrWriter,
            _ctx: &ServerCtx,
        ) -> Result<(), OrbError> {
            let v = args.read_u32()?;
            std::thread::sleep(std::time::Duration::from_millis(u64::from(v % 3)));
            reply.write_u32(v.wrapping_mul(31) ^ 0x5a5a);
            Ok(())
        }
    }

    proptest! {
        #[test]
        fn out_of_order_replies_route_to_their_handles(
            vals in proptest::collection::vec(any::<u32>(), 2..17),
            seed in any::<u64>(),
        ) {
            // Every request rides the same pooled RequestMux connection.
            // Dispatches run concurrently server-side and each sleeps a
            // value-derived amount, so replies come back out of order;
            // handles are then *collected* in a seed-shuffled order, so a
            // handle is routinely consumed while earlier-submitted ones
            // still have parked replies. Each handle must produce exactly
            // its own request's answer.
            let (client, server) = orb_pair();
            let obj = client.object_ref(server.activate(Arc::new(Scramble)));
            let handles: Vec<_> = vals
                .iter()
                .map(|&v| (v, obj.request("scramble").arg_u32(v).submit()))
                .collect();

            // Fisher–Yates on the wait order, driven by the case seed.
            let mut order: Vec<usize> = (0..handles.len()).collect();
            let mut s = seed | 1;
            for i in (1..order.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(i, (s >> 33) as usize % (i + 1));
            }

            let mut results = vec![None; handles.len()];
            let mut pending: Vec<_> = handles.into_iter().map(Some).collect();
            for idx in order {
                let (v, handle) = pending[idx].take().unwrap();
                let mut reply = handle.wait().unwrap();
                results[idx] = Some((v, reply.read_u32().unwrap()));
            }
            for (v, got) in results.into_iter().flatten() {
                prop_assert_eq!(got, v.wrapping_mul(31) ^ 0x5a5a, "cross-routed reply");
            }
        }
    }
}
