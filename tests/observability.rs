//! Observability acceptance: one GridCCM parallel invocation over the
//! simulated fabric yields exactly one connected span tree that crosses
//! the whole stack (ccm → orb → tm → fabric) and more than one node,
//! exports as valid Chrome-trace JSON, and has a critical-path
//! breakdown that sums exactly to the end-to-end virtual latency.

use padico::core::observability::ObservabilitySnapshot;
use padico::core::parallel::adapter::{ParArgs, ParCtx, ParallelServant};
use padico::core::parallel::{ParValue, ParallelAdapter, ParallelRef};
use padico::core::paridl::{ArgDef, InterfaceDef, OpDef, ParamKind};
use padico::core::{DistSeq, Distribution, Grid, GridCcmError, InterceptionPlan};
use std::collections::BTreeSet;
use std::sync::Arc;

fn shift_interface() -> InterfaceDef {
    InterfaceDef {
        repo_id: "IDL:Obs/Shift:1.0".into(),
        ops: vec![OpDef::new(
            "shift",
            vec![
                ArgDef::new("v", ParamKind::Sequence),
                ArgDef::new("delta", ParamKind::Double),
            ],
            Some(ParamKind::Sequence),
        )],
    }
}

fn shift_plan() -> Arc<InterceptionPlan> {
    let xml = r#"<parallelism interface="IDL:Obs/Shift:1.0">
        <operation name="shift">
          <argument index="0" distribution="block"/>
          <result distribution="block"/>
        </operation>
    </parallelism>"#;
    Arc::new(InterceptionPlan::compile(&shift_interface(), xml).unwrap())
}

struct ShiftServant;

impl ParallelServant for ShiftServant {
    fn repository_id(&self) -> &str {
        "IDL:Obs/Shift:1.0"
    }

    fn invoke_parallel(
        &self,
        op: &str,
        args: &ParArgs,
        ctx: &ParCtx,
    ) -> Result<Option<ParValue>, GridCcmError> {
        assert_eq!(op, "shift");
        let local = args.dist(0)?;
        let delta = args.f64(1)?;
        let shifted: Vec<f64> = local.as_f64()?.iter().map(|v| v + delta).collect();
        Ok(Some(ParValue::Dist(DistSeq::from_f64_local(
            local.global_elems,
            local.distribution,
            ctx.rank,
            ctx.size,
            &shifted,
        )?)))
    }
}

fn shift_handle(grid: &Grid, client_node: usize, server_nodes: &[usize]) -> ParallelRef {
    let plan = shift_plan();
    let mut refs = Vec::new();
    for (rank, &node) in server_nodes.iter().enumerate() {
        let adapter = ParallelAdapter::new(Arc::new(ShiftServant), Arc::clone(&plan));
        adapter.configure(rank, server_nodes.len(), None);
        let ior = grid.node(node).env.orb.activate(adapter);
        refs.push(grid.node(client_node).env.orb.object_ref(ior));
    }
    ParallelRef::new("obs-shift", plan, refs, 0, 1).unwrap()
}

fn invoke_shift(par: &ParallelRef, values: &[f64], delta: f64) -> Vec<f64> {
    let arg =
        DistSeq::from_f64_local(values.len() as u64, Distribution::Block, 0, 1, values).unwrap();
    match par
        .invoke("shift", vec![ParValue::Dist(arg), ParValue::F64(delta)])
        .unwrap()
    {
        Some(ParValue::Dist(d)) => d.as_f64().unwrap(),
        other => panic!("unexpected shift result {other:?}"),
    }
}

#[test]
fn parallel_invocation_yields_one_connected_multilayer_tree() {
    let _iso = padico::util::trace::isolated();
    let grid = Grid::single_cluster(3).unwrap();
    let par = shift_handle(&grid, 0, &[1, 2]);
    let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
    let got = invoke_shift(&par, &values, 1.5);
    assert!((got[10] - 11.5).abs() < 1e-9);

    let obs = ObservabilitySnapshot::capture();
    assert_eq!(obs.dropped_spans, 0);

    // Exactly one root: everything the grid did — boot, connection
    // setup, the scatter, the upcalls, the gather — either belongs to
    // this invocation's trace or was untraced.
    let roots: Vec<_> = obs
        .spans
        .iter()
        .filter(|s| s.layer == "ccm.invoke")
        .collect();
    assert_eq!(roots.len(), 1, "one invocation, one root span");
    let root = roots[0].clone();
    assert_eq!(root.parent, 0);
    assert!(
        obs.spans.iter().all(|s| s.trace_id == root.trace_id),
        "stray spans outside the invocation's trace"
    );

    // The tree is connected: every non-root span's parent exists.
    let trace = obs.trace(root.trace_id);
    let ids: BTreeSet<u64> = trace.iter().map(|s| s.span_id).collect();
    for s in &trace {
        assert!(s.span_id != 0, "span ids are nonzero");
        if s.span_id != root.span_id {
            assert!(
                ids.contains(&s.parent),
                "orphan span {} ({}/{})",
                s.name,
                s.layer,
                s.parent
            );
        }
        assert!(s.end >= s.start, "span {} ends before it starts", s.name);
    }

    // It crosses the whole stack and more than one node.
    let layers: BTreeSet<&str> = trace.iter().map(|s| s.layer).collect();
    for needed in ["ccm.invoke", "orb.giop", "tm.vlink", "fabric.link"] {
        assert!(layers.contains(needed), "missing layer {needed}: {layers:?}");
    }
    let subsystems: BTreeSet<&str> = layers
        .iter()
        .map(|l| l.split('.').next().unwrap())
        .collect();
    assert!(subsystems.len() >= 4, "subsystems {subsystems:?}");
    let nodes: BTreeSet<u32> = trace.iter().map(|s| s.node).collect();
    assert!(nodes.len() >= 2, "single-node trace: {nodes:?}");

    // The critical-path breakdown attributes every virtual nanosecond of
    // the end-to-end latency to exactly one layer.
    let cp = obs
        .critical_path(root.trace_id, root.span_id)
        .expect("critical path");
    assert_eq!(cp.total, root.duration());
    assert_eq!(
        cp.self_ns.values().sum::<u64>(),
        cp.total,
        "breakdown must sum to the end-to-end latency: {}",
        cp.render()
    );

    // The Perfetto export is well-formed Chrome-trace JSON.
    let json = obs.chrome_trace_json();
    assert!(json.starts_with("{\"displayTimeUnit\""));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ph\":\"M\""));
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(
            json.matches(open).count(),
            json.matches(close).count(),
            "unbalanced {open}{close}"
        );
    }

    // Span ends fed the per-layer latency histograms, and the fabric fed
    // the byte counters.
    let h = obs
        .metrics
        .histogram("latency.ccm.invoke")
        .expect("invoke latency histogram");
    assert_eq!(h.count, 1);
    assert_eq!(h.sum, root.duration());
    let wire_bytes: u64 = obs
        .metrics
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("bytes."))
        .map(|(_, v)| v)
        .sum();
    assert!(wire_bytes > 0, "no bytes counted on any fabric");
}

#[test]
fn separate_invocations_get_separate_traces() {
    let _iso = padico::util::trace::isolated();
    let grid = Grid::single_cluster(3).unwrap();
    let par = shift_handle(&grid, 0, &[1, 2]);
    let values: Vec<f64> = (0..32).map(|i| i as f64).collect();
    invoke_shift(&par, &values, 1.0);
    invoke_shift(&par, &values, 2.0);

    let obs = ObservabilitySnapshot::capture();
    let roots: Vec<_> = obs
        .spans
        .iter()
        .filter(|s| s.layer == "ccm.invoke")
        .collect();
    assert_eq!(roots.len(), 2);
    assert_ne!(roots[0].trace_id, roots[1].trace_id);
    // Every span belongs to exactly one of the two traces.
    for s in &obs.spans {
        assert!(
            s.trace_id == roots[0].trace_id || s.trace_id == roots[1].trace_id,
            "span {} in neither trace",
            s.name
        );
    }
    assert!(!obs.trace(roots[0].trace_id).is_empty());
    assert!(!obs.trace(roots[1].trace_id).is_empty());
}

#[test]
fn control_service_serves_the_flight_recorder_over_giop() {
    // The introspection path end to end: a GridCCM invocation leaves
    // spans, latency windows, and counters in the flight recorder; a
    // ControlServant on the server node exposes them through the ORB;
    // a client on another node retrieves them with plain GIOP requests
    // — the stack observing itself through its own invocation path.
    let _iso = padico::util::trace::isolated();
    let grid = Grid::single_cluster(3).unwrap();
    let par = shift_handle(&grid, 0, &[1, 2]);
    let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
    invoke_shift(&par, &values, 1.5);

    let ior = padico::control::serve(&grid.node(1).env.orb);
    let client = padico::control::ControlClient::attach(&grid.node(0).env.orb, ior);

    let (node, vt) = client.ping().unwrap();
    assert_eq!(node, 1);
    assert!(vt > 0);

    // The remote snapshot must agree with a local capture on the
    // deterministic parts: same invocation root, same latency series.
    let snap = client.snapshot().unwrap();
    assert!(snap.contains("timeseries latency.ccm.invoke"), "snapshot:\n{snap}");
    assert!(snap.contains("histogram latency.ccm.invoke"));

    let local = ObservabilitySnapshot::capture();
    let root = local
        .spans
        .iter()
        .find(|s| s.layer == "ccm.invoke")
        .expect("invocation root recorded")
        .clone();
    let remote_tree = client.trace(root.trace_id).unwrap();
    // The control poll itself adds orb/tm spans to the buffers, but the
    // finished invocation's tree is immutable — the served dump of that
    // trace must match the local one byte for byte.
    assert_eq!(
        remote_tree,
        padico::util::span::canonical_dump(&local.trace(root.trace_id)),
        "served trace diverged from the local flight recorder"
    );

    let w = client.windows("latency.ccm.invoke").unwrap();
    assert_eq!(
        w.rows.iter().map(|r| r.count).sum::<u64>(),
        1,
        "one invocation, one latency sample: {w:?}"
    );

    let json = client.dump().unwrap();
    assert!(json.contains("traceEvents"));
    assert!(json.contains("invoke:"));
    assert!(json.contains("ts.latency.ccm.invoke"));
}
