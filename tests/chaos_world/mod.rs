//! The seeded chaos failover world, shared by the `chaos` suite and the
//! `engine_equivalence` suite (a separate test binary, hence a separate
//! process — see `engine_equivalence.rs` for why that matters).
//!
//! Everything here is deterministic: fault decisions are a pure function
//! of the plan seed and per-link sequence numbers, and backoff is
//! charged to the virtual clock — so two runs of the same scenario must
//! report identical retry counts, span trees, and metrics.
//!
//! Each including test binary uses a different subset of these helpers.
#![allow(dead_code)]

use padico::core::parallel::adapter::{ParArgs, ParCtx, ParallelServant};
use padico::core::parallel::{ParValue, ParallelAdapter, ParallelRef};
use padico::core::paridl::{ArgDef, InterfaceDef, OpDef, ParamKind};
use padico::core::{DistSeq, Distribution, Grid, GridCcmError, InterceptionPlan};
use padico::fabric::fabric::FabricKind;
use padico::fabric::{presets, FaultPlan, SecurityZone, Topology};
use padico::orb::profile::OrbProfile;
use padico::tm::selector::FabricChoice;
use padico::tm::{EngineKind, RetryPolicy, TmConfig, TraceSampling};
use std::sync::Arc;
use std::time::Duration;

/// The seed the chaos scenarios run under. CI's multi-seed matrix sets
/// `CHAOS_SEED`; local runs default to 42. Every determinism assertion
/// compares two runs of the *same* seed, so any seed must pass.
pub fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Short deadlines (a lost frame costs one reply timeout of wall-clock)
/// and a widened retry budget for the 20%-drop scenarios.
pub fn chaos_config() -> TmConfig {
    TmConfig {
        default_deadline: Duration::from_millis(150),
        connect_timeout: Duration::from_millis(500),
        retry: RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        },
        coalesce: None,
        inflight_budget: None,
        breaker: None,
        engine: EngineKind::default(),
        trace_sampling: TraceSampling::Always,
    }
}

/// Drop the per-fabric `bytes.*` counter lines from a metrics render.
///
/// Needed wherever scenarios that race wall-clock deadlines share a
/// process: a deadline-raced frame (a reply the server sends just as the
/// client gives up) lands in whatever isolated registry window happens
/// to be open — possibly a *neighbouring test's*. Byte tallies are the
/// only counter family such a stray frame perturbs; everything
/// load-bearing (retries, sheds, breaker transitions, deadline refusals,
/// latency histograms) stays in the comparison. The `engine_equivalence`
/// binary owns its whole process and compares the unstripped render.
pub fn strip_bytes(render: &str) -> String {
    render
        .lines()
        .filter(|l| !l.starts_with("counter bytes."))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn shift_interface() -> InterfaceDef {
    InterfaceDef {
        repo_id: "IDL:Chaos/Shift:1.0".into(),
        ops: vec![OpDef::new(
            "shift",
            vec![
                ArgDef::new("v", ParamKind::Sequence),
                ArgDef::new("delta", ParamKind::Double),
            ],
            Some(ParamKind::Sequence),
        )],
    }
}

fn shift_plan() -> Arc<InterceptionPlan> {
    let xml = r#"<parallelism interface="IDL:Chaos/Shift:1.0">
        <operation name="shift">
          <argument index="0" distribution="block"/>
          <result distribution="block"/>
        </operation>
    </parallelism>"#;
    Arc::new(InterceptionPlan::compile(&shift_interface(), xml).unwrap())
}

/// Adds `delta` to its local block — no internal MPI, so a degraded
/// replica group stays self-consistent.
struct ShiftServant;

impl ParallelServant for ShiftServant {
    fn repository_id(&self) -> &str {
        "IDL:Chaos/Shift:1.0"
    }

    fn invoke_parallel(
        &self,
        op: &str,
        args: &ParArgs,
        ctx: &ParCtx,
    ) -> Result<Option<ParValue>, GridCcmError> {
        assert_eq!(op, "shift");
        let local = args.dist(0)?;
        let delta = args.f64(1)?;
        let shifted: Vec<f64> = local.as_f64()?.iter().map(|v| v + delta).collect();
        Ok(Some(ParValue::Dist(DistSeq::from_f64_local(
            local.global_elems,
            local.distribution,
            ctx.rank,
            ctx.size,
            &shifted,
        )?)))
    }
}

/// Activate ShiftServant adapters on `server_nodes` and build a
/// single-rank client handle on `client_node`.
pub fn shift_handle(grid: &Grid, client_node: usize, server_nodes: &[usize]) -> ParallelRef {
    let plan = shift_plan();
    let mut refs = Vec::new();
    for (rank, &node) in server_nodes.iter().enumerate() {
        let adapter = ParallelAdapter::new(Arc::new(ShiftServant), Arc::clone(&plan));
        adapter.configure(rank, server_nodes.len(), None);
        let ior = grid.node(node).env.orb.activate(adapter);
        refs.push(grid.node(client_node).env.orb.object_ref(ior));
    }
    ParallelRef::new("chaos-shift", plan, refs, 0, 1).unwrap()
}

pub fn invoke_shift(
    par: &ParallelRef,
    values: &[f64],
    delta: f64,
) -> Result<Vec<f64>, GridCcmError> {
    let arg = DistSeq::from_f64_local(
        values.len() as u64,
        Distribution::Block,
        0,
        1,
        values,
    )
    .unwrap();
    match par.invoke("shift", vec![ParValue::Dist(arg), ParValue::F64(delta)])? {
        Some(ParValue::Dist(d)) => Ok(d.as_f64().unwrap()),
        other => panic!("unexpected shift result {other:?}"),
    }
}

pub fn assert_shifted(got: &[f64], values: &[f64], delta: f64) {
    assert_eq!(got.len(), values.len());
    for (g, v) in got.iter().zip(values) {
        assert!((g - (v + delta)).abs() < 1e-9, "got {g}, want {}", v + delta);
    }
}

/// A trusted cluster with an SCI SAN (mapping discipline) and a
/// Fast-Ethernet LAN (the socket fallback).
pub fn sci_cluster(n: usize) -> (Topology, Vec<padico::util::ids::NodeId>) {
    let mut b = Topology::builder();
    let ids = b.machine("n", "chaos-cluster", n, SecurityZone::Trusted);
    b.fabric(presets::sci(), ids.clone());
    b.fabric(presets::ethernet100(), ids.clone());
    (b.build(), ids)
}

/// Everything a determinism comparison needs from one traced failover
/// run. `metrics` is the full registry render, `bytes.*` included —
/// captured inside the run's isolated registry window. Compare it
/// directly only when the process runs nothing that races wall-clock
/// deadlines; otherwise compare [`strip_bytes`]`(&run.metrics)`.
pub struct FailoverRun {
    pub dump: String,
    pub metrics: String,
    /// Deterministic render of the virtual-time telemetry windows,
    /// captured inside the run's isolated registry window. Compare
    /// [`strip_sched`]`(&run.timeseries)` across engines: the `sched.*`
    /// series sample wall-clock batching (event engine only) and are
    /// legitimately nondeterministic.
    pub timeseries: String,
    /// `ccm.invoke` roots retained in the span buffers — 4 under
    /// `TraceSampling::Always`, fewer when sampling drops whole trees.
    pub roots: usize,
    pub warmup: Vec<String>,
    pub failover: Vec<String>,
    pub retries: u64,
}

/// Drop the `sched.*` series from a timeseries render: scheduler lane
/// telemetry samples wall-clock batch composition, which no two runs
/// share. Everything else (latency windows, breaker transitions, retry
/// and shed marks) is stamped in virtual time and must replay exactly.
pub fn strip_sched(render: &str) -> String {
    render
        .lines()
        .filter(|l| !l.starts_with("timeseries sched."))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// The traced failover scenario, sized for byte-identical replay: one
/// client rank and one server replica, so every request is sequential
/// and every virtual-time stamp is a pure function of the seed. A
/// GridCCM parallel invocation warms up over the healthy SAN, then the
/// SAN mapping dies and the socket fallback drops 20% of frames.
pub fn run_traced_failover(seed: u64) -> FailoverRun {
    run_traced_failover_with(seed, chaos_config())
}

/// [`run_traced_failover`] with explicit runtime knobs, so the same
/// scenario can be replayed with coalescing enabled or on a specific
/// progress engine.
pub fn run_traced_failover_with(seed: u64, config: TmConfig) -> FailoverRun {
    let _iso = padico::util::trace::isolated();
    let sampling_all = matches!(config.trace_sampling, TraceSampling::Always);
    let (topo, ids) = sci_cluster(2);
    let grid =
        Grid::boot_with_config(topo, OrbProfile::omniorb3(), FabricChoice::Auto, config).unwrap();
    let par = shift_handle(&grid, 0, &[1]);
    let values: Vec<f64> = (0..32).map(|i| i as f64).collect();

    // Warm-up over the healthy SAN.
    assert_shifted(&invoke_shift(&par, &values, 0.5).unwrap(), &values, 0.5);

    // The SAN dies, the socket fallback drops 20% of frames.
    for fabric in grid.topology().fabrics() {
        match fabric.kind() {
            FabricKind::Sci => {
                fabric.kill_mappings(ids[0]);
                fabric.kill_mappings(ids[1]);
            }
            FabricKind::Ethernet => fabric.set_fault_plan(FaultPlan::drops(seed, 20)),
            _ => {}
        }
    }
    for round in 1..=3 {
        let delta = f64::from(round) * 2.0;
        assert_shifted(&invoke_shift(&par, &values, delta).unwrap(), &values, delta);
    }

    // Let deadline-raced stragglers land inside OUR registry window
    // before capturing. A canceled request's late reply is sent by the
    // server's reader thread at thread-scheduling mercy, a few
    // milliseconds after the client has already moved on — the one
    // wall-clock-exposed byte source left in this scenario. The frame
    // SET is deterministic (the span tree replays byte-identically), so
    // "everything landed" is simply "the render stopped changing".
    let mut prev = padico::util::metrics::snapshot().render();
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(40));
        let cur = padico::util::metrics::snapshot().render();
        if cur == prev {
            break;
        }
        prev = cur;
    }

    let retries: u64 = (0..grid.len())
        .map(|i| grid.node(i).env.tm.recovery().snapshot().total_retries())
        .sum();
    let spans = padico::util::span::snapshot();
    let mut roots: Vec<_> = spans.iter().filter(|s| s.layer == "ccm.invoke").collect();
    roots.sort_by_key(|s| s.start);
    if sampling_all {
        assert_eq!(roots.len(), 4, "four invocations, four roots");
    } else {
        assert!(
            roots.len() < 4,
            "sampling must drop at least one of the four invocation trees \
             (got {} roots)",
            roots.len()
        );
    }
    let fabric_names = |trace_id: u64| -> Vec<String> {
        spans
            .iter()
            .filter(|s| s.trace_id == trace_id && s.layer == "fabric.link")
            .map(|s| s.name.clone())
            .collect()
    };
    let warmup = roots
        .first()
        .map(|r| fabric_names(r.trace_id))
        .unwrap_or_default();
    let failover = roots
        .last()
        .map(|r| fabric_names(r.trace_id))
        .unwrap_or_default();
    FailoverRun {
        dump: padico::util::span::canonical_dump(&spans),
        metrics: padico::util::metrics::snapshot().render(),
        timeseries: padico::util::timeseries::snapshot().render(),
        roots: roots.len(),
        warmup,
        failover,
        retries,
    }
}
