//! Cross-crate virtual-time invariants: determinism, cost ordering across
//! fabrics, and the encryption toggle — the properties the experiment
//! harness relies on.

use bytes::Bytes;
use padico::fabric::topology::{single_cluster, two_clusters_wan};
#[allow(unused_imports)]
use padico::fabric::Topology;
use padico::fabric::FabricKind;
use padico::orb::cdr::{CdrReader, CdrWriter};
use padico::orb::orb::Orb;
use padico::orb::poa::{Servant, ServerCtx};
use padico::orb::profile::OrbProfile;
use padico::orb::OrbError;
use padico::tm::runtime::PadicoTM;
use padico::tm::selector::FabricChoice;
use std::sync::Arc;

struct Echo;

impl Servant for Echo {
    fn repository_id(&self) -> &str {
        "IDL:Vt/Echo:1.0"
    }

    fn dispatch(
        &self,
        _op: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        let blob = args.read_octet_seq()?;
        reply.write_octet_seq(blob);
        Ok(())
    }
}

/// A 2-node cluster wired with every SAN/LAN technology (single_cluster
/// omits SCI, which the ordering test needs).
fn all_fabrics_cluster() -> padico::fabric::Topology {
    use padico::fabric::{presets, SecurityZone, Topology};
    let mut b = Topology::builder();
    let ids = b.machine("n", "cluster", 2, SecurityZone::Trusted);
    b.fabric(presets::myrinet2000(), ids.clone());
    b.fabric(presets::sci(), ids.clone());
    b.fabric(presets::ethernet100(), ids.clone());
    b.fabric(presets::shmem(), ids);
    b.build()
}

/// Virtual cost (ns) of a CORBA echo round trip over the chosen fabric.
fn echo_cost(choice: FabricChoice, size: usize, cross_cluster: bool) -> u64 {
    let (tms, a, b) = if cross_cluster {
        let (topo, ca, cb) = two_clusters_wan(1);
        let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
        (tms, ca[0].0 as usize, cb[0].0 as usize)
    } else {
        let tms = PadicoTM::boot_all(Arc::new(all_fabrics_cluster())).unwrap();
        (tms, 0, 1)
    };
    let client = Orb::start(
        Arc::clone(&tms[a]),
        "vt",
        OrbProfile::omniorb3(),
        choice,
    )
    .unwrap();
    let server = Orb::start(
        Arc::clone(&tms[b]),
        "vt",
        OrbProfile::omniorb3(),
        choice,
    )
    .unwrap();
    let obj = client.object_ref(server.activate(Arc::new(Echo)));
    let blob = Bytes::from(vec![9u8; size]);
    // Warmup (connection handshake).
    obj.request("echo")
        .arg_octet_seq(blob.clone())
        .invoke()
        .unwrap()
        .read_octet_seq()
        .unwrap();
    let clock = tms[a].clock();
    let start = clock.now();
    obj.request("echo")
        .arg_octet_seq(blob)
        .invoke()
        .unwrap()
        .read_octet_seq()
        .unwrap();
    clock.now() - start
}

#[test]
fn virtual_time_is_deterministic_across_runs() {
    let size = 128 << 10;
    let a = echo_cost(FabricChoice::Kind(FabricKind::Myrinet), size, false);
    let b = echo_cost(FabricChoice::Kind(FabricKind::Myrinet), size, false);
    assert_eq!(a, b, "two fresh single-flow runs must cost identically");
}

#[test]
fn fabric_cost_ordering_matches_the_hardware() {
    let size = 128 << 10;
    let shmem = echo_cost(FabricChoice::Kind(FabricKind::Shmem), size, false);
    let myrinet = echo_cost(FabricChoice::Kind(FabricKind::Myrinet), size, false);
    let sci = echo_cost(FabricChoice::Kind(FabricKind::Sci), size, false);
    let ethernet = echo_cost(FabricChoice::Kind(FabricKind::Ethernet), size, false);
    let wan = echo_cost(FabricChoice::Auto, size, true); // only route is the WAN
    assert!(
        shmem < myrinet && myrinet < sci && sci < ethernet && ethernet < wan,
        "cost ordering violated: shmem {shmem} < myrinet {myrinet} < sci {sci} \
         < ethernet {ethernet} < wan {wan}"
    );
}

#[test]
fn encryption_is_paid_only_on_untrusted_routes() {
    // Same payload; the WAN route pays the cipher on top of the slower
    // wire, and the cipher alone is a measurable share.
    let size = 256 << 10;
    let trusted = echo_cost(FabricChoice::Kind(FabricKind::Ethernet), size, false);
    let untrusted = echo_cost(FabricChoice::Auto, size, true);
    // Cipher at 18 MB/s on 2×256 KiB ≈ 29 ms (both directions, both ends
    // decrypt): the WAN run must exceed the Ethernet run by far more than
    // the line-rate difference alone (2.5 vs 11.2 MB/s ≈ 4.5×).
    assert!(
        untrusted > 4 * trusted,
        "untrusted {untrusted} vs trusted {trusted}"
    );
}

#[test]
fn auto_selection_picks_the_cheapest_fabric() {
    // With Auto on a single cluster, the selector must do at least as
    // well as the best explicit choice.
    let size = 64 << 10;
    let auto = echo_cost(FabricChoice::Auto, size, false);
    let shmem = echo_cost(FabricChoice::Kind(FabricKind::Shmem), size, false);
    assert_eq!(auto, shmem, "Auto should ride the fastest fabric (shmem)");
}

#[test]
fn mpi_and_corba_costs_are_consistent_between_stacks() {
    // MPI ping-pong and CORBA echo over the same fabric with the same
    // payload must land within 2× of each other (they share the fabric
    // model; the ORB adds protocol weight).
    use padico::fabric::Payload;
    let size = 256 << 10;
    let corba = echo_cost(FabricChoice::Kind(FabricKind::Myrinet), size, false);

    let (topo, ids) = single_cluster(2);
    let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
    let choice = FabricChoice::Kind(FabricKind::Myrinet);
    let c0 = padico::mpi::init_world(&tms[0], "vt", ids.clone(), choice).unwrap();
    let c1 = padico::mpi::init_world(&tms[1], "vt", ids, choice).unwrap();
    let echo = std::thread::spawn(move || {
        for _ in 0..2 {
            let (_s, payload) = c1.recv_bytes(0, 0).unwrap();
            c1.send_bytes(0, 0, payload).unwrap();
        }
    });
    let payload = Payload::from_vec(vec![1u8; size]);
    c0.send_bytes(1, 0, payload.clone()).unwrap();
    c0.recv_bytes(1, 0).unwrap();
    let clock = tms[0].clock();
    let start = clock.now();
    c0.send_bytes(1, 0, payload).unwrap();
    c0.recv_bytes(1, 0).unwrap();
    let mpi = clock.now() - start;
    echo.join().unwrap();

    assert!(
        corba < 2 * mpi && mpi < corba,
        "CORBA {corba} and MPI {mpi} should be close, CORBA slightly heavier"
    );
}
