//! Steady-state allocation regression test for the fabric segment pool.
//!
//! The hot path of a circuit round-trip leases pooled slabs in several
//! places (the per-frame header, the kernel copy at the fabric boundary,
//! cipher scratch). After a short warm-up every one of those leases must
//! be served from a recycled shelf: a steady-state round-trip loop makes
//! **zero** pool misses. This file is its own test binary so the
//! process-global pool counters are not perturbed by unrelated suites.

use padico::fabric::topology::single_cluster;
use padico::fabric::{pool, FabricKind, Payload};
use padico::tm::selector::FabricChoice;
use padico::tm::{CircuitSpec, EngineKind, PadicoTM, TmConfig};
use std::sync::{Arc, Mutex};

const WARMUP: usize = 50;
const MEASURED: usize = 200;

/// Both tests read the process-global pool counters, and under
/// `PADICO_ENGINE=event` both generate event-record traffic — serialize
/// them so neither measures the other's warm-up.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn steady_state_roundtrips_make_zero_pool_misses() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (topo, ids) = single_cluster(2);
    let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
    let circuits: Vec<_> = tms
        .iter()
        .map(|tm| {
            tm.circuit(
                CircuitSpec::new("steady", ids.clone())
                    .with_choice(FabricChoice::Kind(FabricKind::Myrinet)),
            )
            .unwrap()
        })
        .collect();

    // One shared body, cloned per send: a Payload clone is a refcounted
    // segment hand-off, so every pool lease in the loop below is traffic
    // from the runtime's own hot path (headers, kernel copies), not from
    // test scaffolding.
    let body: &[u8] = b"steady-state-ping-pong-payload!!";
    let proto = Payload::from_vec(body.to_vec());

    let roundtrip = |h: u64| {
        // One thread drives both ends, so each send is its own protocol
        // barrier: flush before blocking in the peer's recv (coalescing
        // is on by default).
        circuits[0].send(1, h, proto.clone()).unwrap();
        circuits[0].flush().unwrap();
        let (_, _, p) = circuits[1].recv().unwrap();
        assert_eq!(p.to_vec(), body);
        circuits[1].send(0, h, proto.clone()).unwrap();
        circuits[1].flush().unwrap();
        let (_, _, p) = circuits[0].recv().unwrap();
        assert_eq!(p.to_vec(), body);
    };

    // Warm the shelves: the first few trips populate each size class.
    for i in 0..WARMUP {
        roundtrip(i as u64);
    }

    let before = pool::stats();
    for i in 0..MEASURED {
        roundtrip((WARMUP + i) as u64);
    }
    let after = pool::stats();

    assert_eq!(
        after.misses - before.misses,
        0,
        "steady-state loop allocated: {} fresh slabs over {} round-trips \
         (before {:?}, after {:?})",
        after.misses - before.misses,
        MEASURED,
        before,
        after
    );
    assert!(
        after.hits > before.hits,
        "the loop never touched the pool — the assertion proves nothing \
         (before {before:?}, after {after:?})"
    );
    // Leases are matched by returns: the loop does not leak slabs.
    assert_eq!(
        after.outstanding, before.outstanding,
        "slabs leaked during the measured loop"
    );
}

#[test]
fn steady_state_event_engine_makes_zero_record_misses() {
    // The event engine boxes one record per delivery event; at steady
    // state every one of them must come off the scheduler's record
    // shelf, not the allocator — and the byte slabs must stay warm too.
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (topo, ids) = single_cluster(2);
    let cfg = TmConfig {
        engine: EngineKind::EventLoop,
        ..TmConfig::default()
    };
    let tms = PadicoTM::boot_all_with_config(Arc::new(topo), cfg).unwrap();
    assert_eq!(tms[0].net().io_thread_count(), 0, "event engine: no threads");
    let circuits: Vec<_> = tms
        .iter()
        .map(|tm| {
            tm.circuit(
                CircuitSpec::new("steady-event", ids.clone())
                    .with_choice(FabricChoice::Kind(FabricKind::Myrinet)),
            )
            .unwrap()
        })
        .collect();

    let body: &[u8] = b"steady-state-event-engine-ping!!";
    let proto = Payload::from_vec(body.to_vec());
    let roundtrip = |h: u64| {
        // One thread drives both ends, so each send is its own protocol
        // barrier: flush before blocking in the peer's recv (coalescing
        // is on by default).
        circuits[0].send(1, h, proto.clone()).unwrap();
        circuits[0].flush().unwrap();
        let (_, _, p) = circuits[1].recv().unwrap();
        assert_eq!(p.to_vec(), body);
        circuits[1].send(0, h, proto.clone()).unwrap();
        circuits[1].flush().unwrap();
        let (_, _, p) = circuits[0].recv().unwrap();
        assert_eq!(p.to_vec(), body);
    };

    for i in 0..WARMUP {
        roundtrip(i as u64);
    }

    let slabs_before = pool::stats();
    let recs_before = pool::record_stats();
    for i in 0..MEASURED {
        roundtrip((WARMUP + i) as u64);
    }
    let slabs_after = pool::stats();
    let recs_after = pool::record_stats();

    assert_eq!(
        recs_after.misses - recs_before.misses,
        0,
        "steady-state event loop allocated fresh records over {} round-trips \
         (before {:?}, after {:?})",
        MEASURED,
        recs_before,
        recs_after
    );
    assert!(
        recs_after.hits > recs_before.hits,
        "the loop never drew event records — the assertion proves nothing \
         (before {recs_before:?}, after {recs_after:?})"
    );
    assert_eq!(
        slabs_after.misses - slabs_before.misses,
        0,
        "event-engine round-trips must keep the byte slabs warm too \
         (before {slabs_before:?}, after {slabs_after:?})"
    );
}
