//! Steady-state allocation regression test for the fabric segment pool.
//!
//! The hot path of a circuit round-trip leases pooled slabs in several
//! places (the per-frame header, the kernel copy at the fabric boundary,
//! cipher scratch). After a short warm-up every one of those leases must
//! be served from a recycled shelf: a steady-state round-trip loop makes
//! **zero** pool misses. This file is its own test binary so the
//! process-global pool counters are not perturbed by unrelated suites.

use padico::fabric::topology::single_cluster;
use padico::fabric::{pool, FabricKind, Payload};
use padico::tm::selector::FabricChoice;
use padico::tm::{CircuitSpec, PadicoTM};
use std::sync::Arc;

const WARMUP: usize = 50;
const MEASURED: usize = 200;

#[test]
fn steady_state_roundtrips_make_zero_pool_misses() {
    let (topo, ids) = single_cluster(2);
    let tms = PadicoTM::boot_all(Arc::new(topo)).unwrap();
    let circuits: Vec<_> = tms
        .iter()
        .map(|tm| {
            tm.circuit(
                CircuitSpec::new("steady", ids.clone())
                    .with_choice(FabricChoice::Kind(FabricKind::Myrinet)),
            )
            .unwrap()
        })
        .collect();

    // One shared body, cloned per send: a Payload clone is a refcounted
    // segment hand-off, so every pool lease in the loop below is traffic
    // from the runtime's own hot path (headers, kernel copies), not from
    // test scaffolding.
    let body: &[u8] = b"steady-state-ping-pong-payload!!";
    let proto = Payload::from_vec(body.to_vec());

    let roundtrip = |h: u64| {
        circuits[0].send(1, h, proto.clone()).unwrap();
        let (_, _, p) = circuits[1].recv().unwrap();
        assert_eq!(p.to_vec(), body);
        circuits[1].send(0, h, proto.clone()).unwrap();
        let (_, _, p) = circuits[0].recv().unwrap();
        assert_eq!(p.to_vec(), body);
    };

    // Warm the shelves: the first few trips populate each size class.
    for i in 0..WARMUP {
        roundtrip(i as u64);
    }

    let before = pool::stats();
    for i in 0..MEASURED {
        roundtrip((WARMUP + i) as u64);
    }
    let after = pool::stats();

    assert_eq!(
        after.misses - before.misses,
        0,
        "steady-state loop allocated: {} fresh slabs over {} round-trips \
         (before {:?}, after {:?})",
        after.misses - before.misses,
        MEASURED,
        before,
        after
    );
    assert!(
        after.hits > before.hits,
        "the loop never touched the pool — the assertion proves nothing \
         (before {before:?}, after {after:?})"
    );
    // Leases are matched by returns: the loop does not leak slabs.
    assert_eq!(
        after.outstanding, before.outstanding,
        "slabs leaked during the measured loop"
    );
}
