//! Workspace-level integration: the whole Padico stack (fabric →
//! PadicoTM → ORB → CCM → GridCCM) exercised through the public facade.

use bytes::Bytes;
use padico::ccm::assembly::Assembly;
use padico::ccm::component::{
    CcmComponent, ComponentDescriptor, PortDesc, PortKind, PortRegistry,
};
use padico::ccm::package::Package;
use padico::ccm::CcmError;
use padico::core::dist::DistSeq;
use padico::core::error::GridCcmError;
use padico::core::grid_deploy::GridDeployer;
use padico::core::paridl::{ArgDef, InterceptionPlan, InterfaceDef, OpDef, ParamKind};
use padico::core::parallel::adapter::{ParArgs, ParCtx, ParallelServant};
use padico::core::parallel::component::{GridCcmComponent, ParallelPort};
use padico::core::parallel::wire::ParValue;
use padico::core::Grid;
use padico::mpi::ReduceOp;
use padico::orb::cdr::{CdrReader, CdrWriter};
use padico::orb::poa::{Servant, ServerCtx};
use padico::orb::OrbError;
use std::sync::Arc;

/// A plain CCM echo component used by the sequential paths.
struct EchoComponent {
    registry: Arc<PortRegistry>,
}

struct EchoFacet;

impl Servant for EchoFacet {
    fn repository_id(&self) -> &str {
        "IDL:It/Echo:1.0"
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            "echo" => {
                let blob = args.read_octet_seq()?;
                reply.write_octet_seq(blob);
                Ok(())
            }
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

impl CcmComponent for EchoComponent {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor {
            name: "Echo".into(),
            repo_id: "IDL:It/EchoComponent:1.0".into(),
            ports: vec![PortDesc::new("echo", PortKind::Facet, "IDL:It/Echo:1.0")],
        }
    }

    fn registry(&self) -> &Arc<PortRegistry> {
        &self.registry
    }

    fn facet_servant(&self, name: &str) -> Result<Arc<dyn Servant>, CcmError> {
        match name {
            "echo" => Ok(Arc::new(EchoFacet)),
            other => Err(CcmError::NoSuchPort(other.into())),
        }
    }
}

fn echo_factory() -> Arc<dyn CcmComponent> {
    Arc::new(EchoComponent {
        registry: Arc::new(PortRegistry::new()),
    })
}

#[test]
fn payloads_survive_every_deployment_shape() {
    // One grid; echo components placed on every node; every pairing
    // checked bit-exactly. This sweeps loopback, shmem, Myrinet and
    // Ethernet paths under the same API.
    let grid = Grid::single_cluster(4).unwrap();
    grid.register_factory("make_echo", |_env| echo_factory());
    let assembly = Assembly::parse(
        r#"<assembly name="mesh">
             <component id="e0" package="echo"><placement node="n0"/></component>
             <component id="e1" package="echo"><placement node="n1"/></component>
             <component id="e2" package="echo"><placement node="n2"/></component>
             <component id="e3" package="echo"><placement node="n3"/></component>
           </assembly>"#,
    )
    .unwrap();
    let app = grid
        .deployer()
        .deploy(&assembly, &[Package::new("echo", "1.0", "make_echo")])
        .unwrap();
    let blob = padico::util::rng::payload(77, "full-stack", 64 << 10);
    for src in 0..4 {
        for dst in 0..4 {
            let facet = app
                .component(&format!("e{dst}"))
                .unwrap()
                .provide_facet("echo")
                .unwrap();
            let obj = grid.node(src).env.orb.object_ref(facet);
            let mut reply = obj
                .request("echo")
                .arg_octet_seq(Bytes::from(blob.clone()))
                .invoke()
                .unwrap();
            assert_eq!(
                reply.read_octet_seq().unwrap(),
                Bytes::from(blob.clone()),
                "payload corrupted {src}->{dst}"
            );
        }
    }
}

fn stat_interface() -> InterfaceDef {
    InterfaceDef {
        repo_id: "IDL:It/Stat:1.0".into(),
        ops: vec![
            OpDef::new(
                "mean",
                vec![ArgDef::new("v", ParamKind::Sequence)],
                Some(ParamKind::Double),
            ),
            OpDef::new(
                "shift",
                vec![
                    ArgDef::new("v", ParamKind::Sequence),
                    ArgDef::new("delta", ParamKind::Double),
                ],
                Some(ParamKind::Sequence),
            ),
        ],
    }
}

fn stat_plan() -> Arc<InterceptionPlan> {
    let xml = r#"<parallelism interface="IDL:It/Stat:1.0">
        <operation name="mean">
          <argument index="0" distribution="cyclic"/>
        </operation>
        <operation name="shift">
          <argument index="0" distribution="block"/>
          <result distribution="block"/>
        </operation>
    </parallelism>"#;
    Arc::new(InterceptionPlan::compile(&stat_interface(), xml).unwrap())
}

struct StatServant;

impl ParallelServant for StatServant {
    fn repository_id(&self) -> &str {
        "IDL:It/Stat:1.0"
    }

    fn invoke_parallel(
        &self,
        op: &str,
        args: &ParArgs,
        ctx: &ParCtx,
    ) -> Result<Option<ParValue>, GridCcmError> {
        match op {
            "mean" => {
                let local = args.dist(0)?;
                let vals = local.as_f64()?;
                let pair = [vals.iter().sum::<f64>(), vals.len() as f64];
                let total = match &ctx.comm {
                    Some(comm) => comm.allreduce(ReduceOp::Sum, &pair)?,
                    None => pair.to_vec(),
                };
                Ok(Some(ParValue::F64(total[0] / total[1])))
            }
            "shift" => {
                let local = args.dist(0)?;
                let delta = args.f64(1)?;
                let shifted: Vec<f64> = local.as_f64()?.iter().map(|v| v + delta).collect();
                Ok(Some(ParValue::Dist(DistSeq::from_f64_local(
                    local.global_elems,
                    local.distribution,
                    ctx.rank,
                    ctx.size,
                    &shifted,
                )?)))
            }
            other => Err(GridCcmError::Protocol(format!("unknown op {other}"))),
        }
    }
}

#[test]
fn cyclic_distribution_through_assembly_deployment() {
    // A parallel component with a *cyclic* server distribution, deployed
    // via assembly, driven by a sequential client through the proxy path
    // — crossing distributions (client block → server cyclic) for real.
    let grid = Grid::single_cluster(4).unwrap();
    grid.register_factory("make_stat", |env| {
        GridCcmComponent::new(
            "Stat",
            "IDL:It/StatComponent:1.0",
            env.clone(),
            vec![ParallelPort {
                name: "stat".into(),
                plan: stat_plan(),
                servant: Arc::new(StatServant),
            }],
            vec![],
        ) as _
    });
    let assembly = Assembly::parse(
        r#"<assembly name="stats">
             <component id="stat" package="stat"><parallel replicas="3"/></component>
           </assembly>"#,
    )
    .unwrap();
    let mut deployer = GridDeployer::new(&grid);
    deployer.register_interface(stat_interface(), stat_plan());
    let app = deployer
        .deploy(&assembly, &[Package::new("stat", "1.0", "make_stat")])
        .unwrap();

    let facets: Vec<padico::orb::Ior> = app
        .replicas("stat")
        .iter()
        .map(|r| r.component.provide_facet("stat").unwrap())
        .collect();
    let orb = &grid.node(3).env.orb;
    let proxy = padico::core::parallel::proxy::install_proxy(
        orb,
        stat_interface(),
        stat_plan(),
        facets,
        "stat-proxy",
    )
    .unwrap();
    let client = padico::core::parallel::proxy::SequentialClient::new(
        orb.object_ref(proxy),
        stat_interface(),
    );
    let values: Vec<f64> = (0..101).map(|i| i as f64).collect();
    match client.invoke_f64_seq("mean", &values).unwrap() {
        Some(ParValue::F64(m)) => assert!((m - 50.0).abs() < 1e-9, "mean {m}"),
        other => panic!("unexpected {other:?}"),
    }
    // Distributed result back through the proxy.
    let mut data = Vec::new();
    for v in &values {
        data.extend_from_slice(&v.to_le_bytes());
    }
    match client
        .invoke(
            "shift",
            &[
                ParValue::Seq {
                    elem_size: 8,
                    data: Bytes::from(data),
                },
                ParValue::F64(1.5),
            ],
        )
        .unwrap()
    {
        Some(ParValue::Seq { data, .. }) => {
            let got: Vec<f64> = data
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            for (i, v) in got.iter().enumerate() {
                assert!((v - (i as f64 + 1.5)).abs() < 1e-9);
            }
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn two_cluster_grid_crosses_the_wan_transparently() {
    // The same echo invocation, same code — but the components sit in
    // different clusters, so the bytes cross the (encrypted) WAN.
    let grid = Grid::two_clusters(1).unwrap();
    grid.register_factory("make_echo", |_env| echo_factory());
    let assembly = Assembly::parse(
        r#"<assembly name="wan">
             <component id="a" package="echo"><placement machine="cluster-a"/></component>
             <component id="b" package="echo"><placement machine="cluster-b"/></component>
           </assembly>"#,
    )
    .unwrap();
    let app = grid
        .deployer()
        .deploy(&assembly, &[Package::new("echo", "1.0", "make_echo")])
        .unwrap();
    let facet = app.component("b").unwrap().provide_facet("echo").unwrap();
    let a_env = &grid.node_by_name("a0").unwrap().env;
    let obj = a_env.orb.object_ref(facet);
    let blob = padico::util::rng::payload(3, "wan", 32 << 10);
    let before = a_env.tm.clock().now();
    let mut reply = obj
        .request("echo")
        .arg_octet_seq(Bytes::from(blob.clone()))
        .invoke()
        .unwrap();
    assert_eq!(reply.read_octet_seq().unwrap(), Bytes::from(blob));
    let elapsed_ms = (a_env.tm.clock().now() - before) as f64 / 1e6;
    // 64 KiB round trip over a 2.5 MB/s WAN with 5 ms propagation and
    // cipher cost: tens of milliseconds, not microseconds.
    assert!(
        elapsed_ms > 20.0,
        "WAN round trip should be slow, got {elapsed_ms:.2} ms"
    );
}
