//! World dashboard: the flight recorder served over GIOP, polled live.
//!
//! Boots a 6-node cluster (SCI SAN + Fast-Ethernet fallback) with the
//! full observability stack on — virtual-time telemetry windows, span
//! sampling, circuit breakers, admission control — then drives three
//! workload phases against an echo service while a dashboard client on
//! another node polls the [`padico_control`] introspection object
//! *through the same ORB the workload uses*:
//!
//! 1. **healthy** — warm-up traffic over the SAN;
//! 2. **degraded** — the SAN dies and the Ethernet fallback drops 40%
//!    of frames: retries, breaker trips, and failover light up;
//! 3. **storm** — 8 concurrent clients against a 2-slot admission
//!    budget: load-shedding kicks in.
//!
//! After each phase the dashboard renders the per-window activity bars
//! (sheds, retries, breaker transitions) fetched via `windows()`, and at
//! the end it pulls the full Perfetto export via `dump()`.
//!
//! ```text
//! cargo run --example world_dashboard [flight_recorder.json]
//! ```

use padico::control::{ControlClient, SeriesWindows};
use padico::core::Grid;
use padico::fabric::fabric::FabricKind;
use padico::fabric::{presets, FaultPlan, SecurityZone, Topology};
use padico::orb::cdr::{CdrReader, CdrWriter};
use padico::orb::poa::{Servant, ServerCtx};
use padico::orb::profile::OrbProfile;
use padico::orb::OrbError;
use padico::tm::selector::FabricChoice;
use padico::tm::{BreakerPolicy, RetryPolicy, TmConfig, TraceSampling};
use std::sync::Arc;
use std::time::Duration;

/// Echo with a little simulated compute: enough virtual latency that
/// concurrent callers overlap and the admission budget bites.
struct Echo;

impl Servant for Echo {
    fn repository_id(&self) -> &str {
        "IDL:Dashboard/Echo:1.0"
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            "echo" => {
                let v = args.read_u64()?;
                ctx.clock.advance(200_000); // 0.2 ms of "work"
                reply.write_u64(v);
                Ok(())
            }
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

/// Wall-clock patience around one call. The stack's own retry backoff
/// is charged to the *virtual* clock, so it costs no wall time — a shed
/// against the 2-slot admission budget can outlast the whole in-stack
/// retry budget when the server thread is a few microseconds late
/// releasing a slot. A real dashboard just polls again; so do we.
fn patient<T>(mut call: impl FnMut() -> Result<T, OrbError>) -> Result<T, OrbError> {
    let mut last = None;
    for _ in 0..50 {
        match call() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("loop ran at least once"))
}

fn render_bars(title: &str, w: &SeriesWindows) {
    if w.rows.is_empty() {
        println!("  {title:<28} (no samples)");
        return;
    }
    let window_ms = w.window_ns as f64 / 1e6;
    let total: u64 = w.rows.iter().map(|r| r.count).sum();
    println!(
        "  {title:<28} {total} events over {} windows of {window_ms} ms \
         (dropped={}, evicted={})",
        w.rows.len(),
        w.dropped_samples,
        w.evicted_windows
    );
    for row in &w.rows {
        let bar = "#".repeat((row.count as usize).min(50));
        println!(
            "    vt[{:>6.1}ms] {bar} {}",
            row.index as f64 * window_ms,
            row.count
        );
    }
}

fn dashboard_frame(grid: &Grid, client: &ControlClient, phase: &str) {
    // The dashboard node idles between polls, so its virtual clock lags
    // the busy workload nodes — and a deadline minted from a lagging
    // clock is already expired at the server. Merge it forward to the
    // world's newest vt first (the in-sim analogue of NTP sync).
    let newest = (0..grid.len())
        .map(|i| grid.node(i).env.tm.clock().now())
        .max()
        .unwrap_or(0);
    grid.node(5).env.tm.clock().merge_to(newest);

    let (node, vt) = patient(|| client.ping()).expect("control object reachable");
    println!("\n== dashboard: {phase} (node {node}, vt {:.1} ms) ==", vt as f64 / 1e6);
    for (title, series) in [
        ("admission sheds", "orb.admission.shed"),
        ("giop retries", "recovery.giop_retries"),
        ("send retries", "recovery.send_retries"),
        ("breaker opens", "tm.breaker.open"),
        ("breaker closes", "tm.breaker.close"),
        ("giop attempt latency", "latency.orb.giop"),
    ] {
        let w = patient(|| client.windows(series)).expect("windows call succeeds");
        render_bars(title, &w);
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "flight_recorder.json".into());

    // A trusted 6-node cluster: SCI SAN + Fast-Ethernet fallback.
    let mut b = Topology::builder();
    let ids = b.machine("n", "dashboard-cluster", 6, SecurityZone::Trusted);
    b.fabric(presets::sci(), ids.clone());
    b.fabric(presets::ethernet100(), ids.clone());
    let topo = b.build();

    // Full observability config: sampling keeps 1 in 4 traces, the
    // admission budget is deliberately tight, the breaker trips fast.
    let config = TmConfig {
        default_deadline: Duration::from_millis(150),
        connect_timeout: Duration::from_millis(500),
        retry: RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        },
        inflight_budget: Some(2),
        breaker: Some(BreakerPolicy::default()),
        trace_sampling: TraceSampling::SampleEvery(4),
        ..TmConfig::default()
    };
    let grid = Grid::boot_with_config(topo, OrbProfile::omniorb3(), FabricChoice::Auto, config)
        .expect("grid boots");

    // The observed world: an echo service on node 1, the control object
    // on the same node (it reports process-global state), the dashboard
    // client on node 5 — every poll is a real GIOP round-trip.
    let echo_ior = grid.node(1).env.orb.activate(Arc::new(Echo));
    let control_ior = padico::control::serve(&grid.node(1).env.orb);
    println!("control object IOR: {}...", &control_ior.stringify()[..48.min(control_ior.stringify().len())]);
    let dashboard = ControlClient::attach(&grid.node(5).env.orb, control_ior);

    // Phase 1: healthy warm-up over the SAN. Each call opens a root
    // span so the whole invocation is a traceable causal tree — under
    // SampleEvery(4) only ~1 in 4 of these trees lands in the buffers.
    let client_tm = Arc::clone(&grid.node(0).env.tm);
    let obj = grid.node(0).env.orb.object_ref(echo_ior.clone());
    let echo = |trace_id: u64| {
        let _root = padico::util::span::root(
            client_tm.clock(),
            client_tm.node().0,
            trace_id,
            "app.echo",
            format!("echo:{trace_id}"),
        );
        obj.request("echo").arg_u64(trace_id).idempotent().invoke()
    };
    for i in 0..40u64 {
        patient(|| echo(i)).expect("healthy echo succeeds");
    }
    dashboard_frame(&grid, &dashboard, "phase 1: healthy");

    // Phase 2: the workload client's SAN mapping dies and the Ethernet
    // fallback drops 40% of frames — retries, failover, and breaker
    // trips on the 0→1 route. The dashboard's 5→1 path keeps its SAN,
    // so the control plane stays reachable while the data plane churns.
    for fabric in grid.topology().fabrics() {
        match fabric.kind() {
            FabricKind::Sci => fabric.kill_mappings(ids[0]),
            FabricKind::Ethernet => fabric.set_fault_plan(FaultPlan::drops(7, 40)),
            _ => {}
        }
    }
    for i in 100..130u64 {
        // Some of these exhaust their retry budget against a tripped
        // breaker — that is the point; the dashboard shows it.
        let _ = echo(i);
    }
    dashboard_frame(&grid, &dashboard, "phase 2: degraded (SAN down, 40% drops)");

    // Phase 3: heal the fabric, then storm the 2-slot admission budget
    // with 8 concurrent clients on distinct nodes.
    for fabric in grid.topology().fabrics() {
        if fabric.kind() == FabricKind::Ethernet {
            fabric.set_fault_plan(FaultPlan::default());
        }
    }
    std::thread::scope(|scope| {
        for c in 0..8u64 {
            let orb = &grid.node([0, 2, 3, 4][c as usize % 4]).env.orb;
            let ior = echo_ior.clone();
            scope.spawn(move || {
                let obj = orb.object_ref(ior);
                for i in 0..25u64 {
                    let _ = obj.request("echo").arg_u64(c * 1000 + i).invoke();
                }
            });
        }
    });
    dashboard_frame(&grid, &dashboard, "phase 3: storm (8 clients, budget 2)");

    // Pull one sampled causal tree and the full flight recorder.
    let snapshot = patient(|| dashboard.snapshot()).expect("snapshot over GIOP");
    let spans = padico::util::span::snapshot();
    if let Some(root) = spans.iter().find(|s| s.layer == "app.echo") {
        let tree = patient(|| dashboard.trace(root.trace_id)).expect("trace over GIOP");
        println!(
            "\nsampled trace {} ({} spans):\n{}",
            root.trace_id,
            tree.lines().count(),
            tree.lines().take(8).collect::<Vec<_>>().join("\n")
        );
    }
    println!(
        "\nsnapshot render: {} lines ({} timeseries lines)",
        snapshot.lines().count(),
        snapshot.lines().filter(|l| l.starts_with("timeseries")).count()
    );

    let json = patient(|| dashboard.dump()).expect("dump over GIOP");
    std::fs::write(&out_path, &json).expect("write flight recorder");
    println!(
        "flight recorder written to {out_path} ({} bytes) — open in Perfetto / chrome://tracing",
        json.len()
    );
}
