//! Trace one GridCCM parallel invocation end to end.
//!
//! Boots a 4-node grid, deploys a 3-replica parallel component, drives
//! one invocation through the sequential-client proxy, then dumps what
//! the observability layer saw: the causal span tree (as a Chrome-trace
//! JSON file loadable in Perfetto / `chrome://tracing`), the
//! critical-path breakdown of the invocation's virtual latency, and the
//! metrics registry.
//!
//! ```text
//! cargo run --example trace_invocation [output.json]
//! ```

use bytes::Bytes;
use padico::ccm::assembly::Assembly;
use padico::ccm::package::Package;
use padico::core::dist::DistSeq;
use padico::core::error::GridCcmError;
use padico::core::grid_deploy::GridDeployer;
use padico::core::observability::ObservabilitySnapshot;
use padico::core::paridl::{ArgDef, InterceptionPlan, InterfaceDef, OpDef, ParamKind};
use padico::core::parallel::adapter::{ParArgs, ParCtx, ParallelServant};
use padico::core::parallel::component::{GridCcmComponent, ParallelPort};
use padico::core::parallel::wire::ParValue;
use padico::core::Grid;
use std::sync::Arc;

fn scale_interface() -> InterfaceDef {
    InterfaceDef {
        repo_id: "IDL:Trace/Scale:1.0".into(),
        ops: vec![OpDef::new(
            "scale",
            vec![
                ArgDef::new("v", ParamKind::Sequence),
                ArgDef::new("factor", ParamKind::Double),
            ],
            Some(ParamKind::Sequence),
        )],
    }
}

fn scale_plan() -> Arc<InterceptionPlan> {
    let xml = r#"<parallelism interface="IDL:Trace/Scale:1.0">
        <operation name="scale">
          <argument index="0" distribution="block"/>
          <result distribution="block"/>
        </operation>
    </parallelism>"#;
    Arc::new(InterceptionPlan::compile(&scale_interface(), xml).unwrap())
}

struct ScaleServant;

impl ParallelServant for ScaleServant {
    fn repository_id(&self) -> &str {
        "IDL:Trace/Scale:1.0"
    }

    fn invoke_parallel(
        &self,
        op: &str,
        args: &ParArgs,
        ctx: &ParCtx,
    ) -> Result<Option<ParValue>, GridCcmError> {
        match op {
            "scale" => {
                let local = args.dist(0)?;
                let factor = args.f64(1)?;
                let scaled: Vec<f64> = local.as_f64()?.iter().map(|v| v * factor).collect();
                Ok(Some(ParValue::Dist(DistSeq::from_f64_local(
                    local.global_elems,
                    local.distribution,
                    ctx.rank,
                    ctx.size,
                    &scaled,
                )?)))
            }
            other => Err(GridCcmError::Protocol(format!("unknown op {other}"))),
        }
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_invocation.json".into());

    // Boot the grid and deploy a 3-replica parallel component.
    let grid = Grid::single_cluster(4).expect("grid boots");
    grid.register_factory("make_scale", |env| {
        GridCcmComponent::new(
            "Scale",
            "IDL:Trace/ScaleComponent:1.0",
            env.clone(),
            vec![ParallelPort {
                name: "scale".into(),
                plan: scale_plan(),
                servant: Arc::new(ScaleServant),
            }],
            vec![],
        ) as _
    });
    let assembly = Assembly::parse(
        r#"<assembly name="traced">
             <component id="scale" package="scale"><parallel replicas="3"/></component>
           </assembly>"#,
    )
    .unwrap();
    let mut deployer = GridDeployer::new(&grid);
    deployer.register_interface(scale_interface(), scale_plan());
    let app = deployer
        .deploy(&assembly, &[Package::new("scale", "1.0", "make_scale")])
        .expect("deploys");

    // Drive one parallel invocation from node 3 through the proxy: the
    // argument is block-scattered over the 3 replicas, the result block
    // comes back reassembled.
    let facets: Vec<padico::orb::Ior> = app
        .replicas("scale")
        .iter()
        .map(|r| r.component.provide_facet("scale").unwrap())
        .collect();
    let orb = &grid.node(3).env.orb;
    let proxy = padico::core::parallel::proxy::install_proxy(
        orb,
        scale_interface(),
        scale_plan(),
        facets,
        "scale-proxy",
    )
    .unwrap();
    let client = padico::core::parallel::proxy::SequentialClient::new(
        orb.object_ref(proxy),
        scale_interface(),
    );
    let values: Vec<f64> = (0..96).map(|i| i as f64).collect();
    let mut data = Vec::new();
    for v in &values {
        data.extend_from_slice(&v.to_le_bytes());
    }
    let reply = client
        .invoke(
            "scale",
            &[
                ParValue::Seq {
                    elem_size: 8,
                    data: Bytes::from(data),
                },
                ParValue::F64(2.0),
            ],
        )
        .expect("invocation");
    match reply {
        Some(ParValue::Seq { data, .. }) => {
            assert_eq!(data.len(), 96 * 8);
            println!("scaled 96 doubles across 3 replicas");
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // What the observability layer saw.
    let obs = ObservabilitySnapshot::capture();
    let root = obs
        .spans
        .iter()
        .find(|s| s.layer == "ccm.invoke")
        .expect("a traced invocation");
    let trace = obs.trace(root.trace_id);
    let nodes: std::collections::BTreeSet<u32> = trace.iter().map(|s| s.node).collect();
    let layers: std::collections::BTreeSet<&str> = trace.iter().map(|s| s.layer).collect();
    println!(
        "trace {:016x}: {} spans across {} nodes and layers {:?}",
        root.trace_id,
        trace.len(),
        nodes.len(),
        layers
    );

    print!(
        "{}",
        obs.critical_path(root.trace_id, root.span_id)
            .expect("critical path")
            .render()
    );

    std::fs::write(&out_path, padico::util::span::chrome_trace_json(&trace))
        .expect("write trace file");
    println!("wrote {out_path} — load it in Perfetto or chrome://tracing");

    print!("{}", obs.metrics.render());
}
