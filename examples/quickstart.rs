//! Quickstart: boot a simulated grid, deploy a two-component assembly
//! through the CCM deployment engine, and invoke across nodes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use padico::ccm::assembly::Assembly;
use padico::ccm::component::{
    CcmComponent, ComponentDescriptor, PortDesc, PortKind, PortRegistry,
};
use padico::ccm::package::Package;
use padico::ccm::CcmError;
use padico::core::Grid;
use padico::orb::cdr::{CdrReader, CdrWriter};
use padico::orb::poa::{Servant, ServerCtx};
use padico::orb::OrbError;
use std::sync::Arc;

/// A component providing one facet: `greeter`, with a `greet(name)` op.
struct Greeter {
    registry: Arc<PortRegistry>,
}

struct GreeterFacet;

impl Servant for GreeterFacet {
    fn repository_id(&self) -> &str {
        "IDL:Quickstart/Greeter:1.0"
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            "greet" => {
                let name = args.read_string()?;
                reply.write_string(&format!("hello {name}, from {}", ctx.node));
                Ok(())
            }
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

impl CcmComponent for Greeter {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor {
            name: "Greeter".into(),
            repo_id: "IDL:Quickstart/GreeterComponent:1.0".into(),
            ports: vec![PortDesc::new(
                "greeter",
                PortKind::Facet,
                "IDL:Quickstart/Greeter:1.0",
            )],
        }
    }

    fn registry(&self) -> &Arc<PortRegistry> {
        &self.registry
    }

    fn facet_servant(&self, name: &str) -> Result<Arc<dyn Servant>, CcmError> {
        match name {
            "greeter" => Ok(Arc::new(GreeterFacet)),
            other => Err(CcmError::NoSuchPort(other.into())),
        }
    }
}

fn main() {
    // 1. Boot a 3-node grid: PadicoTM runtime, ORB, container and node
    //    daemon on every node, naming service on node 0.
    let grid = Grid::single_cluster(3).expect("grid boots");
    println!("grid up: {} nodes", grid.len());

    // 2. Register the component factory (the stand-in for a shipped
    //    binary's entry point) and describe the deployment in XML.
    grid.register_factory("make_greeter", |_env| {
        Arc::new(Greeter {
            registry: Arc::new(PortRegistry::new()),
        })
    });
    let assembly = Assembly::parse(
        r#"<assembly name="hello">
             <component id="greeter" package="greeter">
               <placement node="n2"/>
             </component>
           </assembly>"#,
    )
    .expect("assembly parses");
    let package = Package::new("greeter", "1.0", "make_greeter");

    // 3. Deploy: machine discovery, package upload, instantiation,
    //    lifecycle — all driven through CORBA calls.
    let app = grid.deployer().deploy(&assembly, &[package]).expect("deploys");
    println!(
        "deployed `{}` on {}",
        app.name,
        app.replicas("greeter")[0].node
    );

    // 4. Invoke the facet from a different node.
    let facet_ior = app
        .component("greeter")
        .unwrap()
        .provide_facet("greeter")
        .expect("facet");
    let obj = grid.node(0).env.orb.object_ref(facet_ior);
    let mut reply = obj
        .request("greet")
        .arg_string("grid")
        .invoke()
        .expect("invocation");
    println!("reply: {}", reply.read_string().unwrap());

    // 5. Virtual time tells us what the exchange cost.
    println!(
        "virtual time spent on node 0: {:.1} µs",
        grid.node(0).env.tm.clock().now() as f64 / 1000.0
    );
}
