//! The paper's §2 deployment scenarios, exercised end to end:
//!
//! * **communication flexibility** — the same two components deployed on
//!   (a) two parallel machines coupled by a WAN and (b) one parallel
//!   machine; PadicoTM's selector transparently uses the WAN in the first
//!   case and the Myrinet SAN (or shared memory) in the second;
//! * **machine discovery** — the deployer finds nodes through the naming
//!   service and inspects their properties;
//! * **localization constraints** — company X's patented chemistry code
//!   may only run on company X's machines;
//! * **communication security** — traffic crossing the untrusted WAN is
//!   encrypted; traffic inside a trusted machine is not (the §6
//!   optimization), visible in the virtual-time cost.
//!
//! ```text
//! cargo run --example deployment_scenarios
//! ```

use padico::ccm::assembly::Assembly;
use padico::ccm::component::{
    CcmComponent, ComponentDescriptor, PortDesc, PortKind, PortRegistry,
};
use padico::ccm::package::Package;
use padico::ccm::CcmError;
use padico::core::Grid;
use padico::fabric::{FabricKind, Paradigm};
use padico::orb::cdr::{CdrReader, CdrWriter};
use padico::orb::poa::{Servant, ServerCtx};
use padico::orb::profile::OrbProfile;
use padico::orb::OrbError;
use padico::tm::selector::FabricChoice;
use std::sync::Arc;

/// Minimal field-exchange component used by every scenario.
struct FieldComponent {
    registry: Arc<PortRegistry>,
}

struct FieldFacet;

impl Servant for FieldFacet {
    fn repository_id(&self) -> &str {
        "IDL:Scenario/Field:1.0"
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            "exchange" => {
                let blob = args.read_octet_seq()?;
                reply.write_octet_seq(blob);
                Ok(())
            }
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

impl CcmComponent for FieldComponent {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor {
            name: "Field".into(),
            repo_id: "IDL:Scenario/FieldComponent:1.0".into(),
            ports: vec![
                PortDesc::new("field", PortKind::Facet, "IDL:Scenario/Field:1.0"),
                PortDesc::new("peer", PortKind::Receptacle, "IDL:Scenario/Field:1.0"),
            ],
        }
    }

    fn registry(&self) -> &Arc<PortRegistry> {
        &self.registry
    }

    fn facet_servant(&self, name: &str) -> Result<Arc<dyn Servant>, CcmError> {
        match name {
            "field" => Ok(Arc::new(FieldFacet)),
            other => Err(CcmError::NoSuchPort(other.into())),
        }
    }
}

const ASSEMBLY_TWO_MACHINES: &str = r#"
    <assembly name="coupling">
      <component id="chem" package="chemistry">
        <placement machine="cluster-a"/>
      </component>
      <component id="trans" package="transport">
        <placement machine="cluster-b"/>
      </component>
      <connection id="c">
        <provides component="chem" facet="field"/>
        <uses component="trans" receptacle="peer"/>
      </connection>
    </assembly>"#;

const ASSEMBLY_ONE_MACHINE: &str = r#"
    <assembly name="coupling">
      <component id="chem" package="chemistry"/>
      <component id="trans" package="transport"/>
      <connection id="c">
        <provides component="chem" facet="field"/>
        <uses component="trans" receptacle="peer"/>
      </connection>
    </assembly>"#;

fn deploy_and_exchange(grid: &Grid, assembly_xml: &str) -> (String, String, f64) {
    grid.register_factory("make_field", |_env| {
        Arc::new(FieldComponent {
            registry: Arc::new(PortRegistry::new()),
        }) as _
    });
    let packages = [
        Package::new("chemistry", "1.0", "make_field"),
        Package::new("transport", "1.0", "make_field"),
    ];
    let assembly = Assembly::parse(assembly_xml).unwrap();
    let app = grid.deployer().deploy(&assembly, &packages).unwrap();
    let chem_node = app.replicas("chem")[0].node.clone();
    let trans_node = app.replicas("trans")[0].node.clone();

    // The transport component exchanges a field block with chemistry
    // through its connected receptacle; we drive the same call from the
    // transport node to measure the route cost.
    let facet = app.component("chem").unwrap().provide_facet("field").unwrap();
    let trans_env = &grid.node_by_name(&trans_node).unwrap().env;
    let obj = trans_env.orb.object_ref(facet);
    let blob = bytes::Bytes::from(vec![5u8; 256 << 10]);
    let clock = trans_env.tm.clock();
    let start = clock.now();
    let mut reply = obj
        .request("exchange")
        .arg_octet_seq(blob)
        .invoke()
        .unwrap();
    reply.read_octet_seq().unwrap();
    let ms = (clock.now() - start) as f64 / 1e6;
    (chem_node, trans_node, ms)
}

fn main() {
    // --- Scenario A: two parallel machines coupled by a WAN. -----------
    let (topo_a, cluster_a, cluster_b) = padico::fabric::topology::two_clusters_wan(2);
    println!("scenario A: clusters {:?} + {:?} coupled by a WAN", cluster_a, cluster_b);
    // Machine discovery first (paper: "a mechanism to find machines").
    let grid_a = Grid::boot(topo_a, OrbProfile::omniorb3(), FabricChoice::Auto).unwrap();
    for daemon in grid_a.deployer().discover().unwrap() {
        println!(
            "  discovered {} on machine {} (trusted: {})",
            daemon.props.name, daemon.props.machine, daemon.props.trusted
        );
    }
    let (chem, trans, ms) = deploy_and_exchange(&grid_a, ASSEMBLY_TWO_MACHINES);
    // Which fabric does the selector pick between the two components?
    let topo = grid_a.topology();
    let chem_id = grid_a.node_by_name(&chem).unwrap().env.tm.node();
    let trans_id = grid_a.node_by_name(&trans).unwrap().env.tm.node();
    let route = padico::tm::selector::select(
        topo,
        &[chem_id, trans_id],
        Paradigm::Distributed,
        FabricChoice::Auto,
    )
    .unwrap();
    println!(
        "  chem on {chem}, trans on {trans}: route = {} (encrypted: {}), \
         256 KiB exchange took {ms:.2} ms",
        route.fabric.model().name,
        route.encrypt
    );
    assert_eq!(route.fabric.kind(), FabricKind::Wan);
    assert!(route.encrypt, "WAN traffic must be secured");

    // --- Scenario B: one parallel machine, same assembly. --------------
    let (topo_b, _nodes) = padico::fabric::topology::single_cluster(4);
    let grid_b = Grid::boot(topo_b, OrbProfile::omniorb3(), FabricChoice::Auto).unwrap();
    println!("scenario B: one 4-node parallel machine");
    let (chem, trans, ms) = deploy_and_exchange(&grid_b, ASSEMBLY_ONE_MACHINE);
    let chem_id = grid_b.node_by_name(&chem).unwrap().env.tm.node();
    let trans_id = grid_b.node_by_name(&trans).unwrap().env.tm.node();
    let route = padico::tm::selector::select(
        grid_b.topology(),
        &[chem_id, trans_id],
        Paradigm::Distributed,
        FabricChoice::Auto,
    )
    .unwrap();
    println!(
        "  chem on {chem}, trans on {trans}: route = {} (encrypted: {}), \
         256 KiB exchange took {ms:.2} ms",
        route.fabric.model().name,
        route.encrypt
    );
    assert!(!route.encrypt, "intra-machine traffic stays cleartext");
    println!("  same binaries, same assembly — only the placement changed.");

    // --- Scenario C: localization constraint. ---------------------------
    println!("scenario C: company X's chemistry code is pinned to cluster-a");
    let (topo_c, _, _) = padico::fabric::topology::two_clusters_wan(1);
    let grid_c = Grid::boot(topo_c, OrbProfile::omniorb3(), FabricChoice::Auto).unwrap();
    grid_c.register_factory("make_field", |_env| {
        Arc::new(FieldComponent {
            registry: Arc::new(PortRegistry::new()),
        }) as _
    });
    let pinned = Package::new("chemistry", "1.0", "make_field")
        .restrict_to_machines(&["cluster-a"]);
    // Trying to force it onto cluster-b fails with a localization error...
    let bad = Assembly::parse(
        r#"<assembly name="bad">
             <component id="chem" package="chemistry">
               <placement machine="cluster-b"/>
             </component>
           </assembly>"#,
    )
    .unwrap();
    match grid_c.deployer().deploy(&bad, std::slice::from_ref(&pinned)) {
        Err(e) => println!("  forced misplacement refused: {e}"),
        Ok(_) => unreachable!(),
    }
    // ...while an unconstrained placement lands it on company X's machine.
    let good = Assembly::parse(
        r#"<assembly name="good">
             <component id="chem" package="chemistry"/>
           </assembly>"#,
    )
    .unwrap();
    let app = grid_c.deployer().deploy(&good, &[pinned]).unwrap();
    println!(
        "  automatic placement honoured the constraint: chem on {}",
        app.replicas("chem")[0].node
    );
}
