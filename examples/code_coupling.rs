//! The paper's §2 motivating application: coupling a chemistry code and a
//! transport code, both parallel, inside one high-performance environment.
//!
//! Two SPMD components run on the grid:
//!
//! * **chemistry** (3 nodes) — computes the chemical product's density
//!   field and exposes it through a parallel facet;
//! * **transport** (2 nodes) — simulates the medium's porosity; each
//!   timestep it pulls the density field from chemistry through a
//!   *parallel connection* (GridCCM redistributes the blocks 3 → 2) and
//!   advances its local state with MPI-internal communication.
//!
//! ```text
//! cargo run --example code_coupling
//! ```

use padico::ccm::assembly::Assembly;
use padico::ccm::component::{PortDesc, PortKind};
use padico::ccm::package::Package;
use padico::core::dist::{DistSeq, Distribution};
use padico::core::error::GridCcmError;
use padico::core::grid_deploy::GridDeployer;
use padico::core::paridl::{ArgDef, InterceptionPlan, InterfaceDef, OpDef, ParamKind};
use padico::core::parallel::adapter::{ParArgs, ParCtx, ParallelServant};
use padico::core::parallel::component::{GridCcmComponent, ParallelPort};
use padico::core::parallel::wire::ParValue;
use padico::core::Grid;
use padico::mpi::ReduceOp;
use parking_lot::Mutex;
use std::sync::Arc;

const FIELD_ELEMS: u64 = 1 << 14; // 16 Ki doubles ≈ 128 KiB global field

/// The density-provider interface of the chemistry component.
fn chemistry_interface() -> InterfaceDef {
    InterfaceDef {
        repo_id: "IDL:Coupling/Density:1.0".into(),
        ops: vec![
            // Returns the current density field, block-distributed.
            OpDef::new("density", vec![], Some(ParamKind::Sequence)),
            // Advances the chemistry simulation one step.
            OpDef::new("step", vec![ArgDef::new("dt", ParamKind::Double)], None),
        ],
    }
}

const CHEMISTRY_PAR_XML: &str = r#"
    <parallelism interface="IDL:Coupling/Density:1.0">
      <operation name="density">
        <result distribution="block"/>
      </operation>
    </parallelism>"#;

fn chemistry_plan() -> Arc<InterceptionPlan> {
    Arc::new(InterceptionPlan::compile(&chemistry_interface(), CHEMISTRY_PAR_XML).unwrap())
}

/// SPMD chemistry servant: holds a local block of the density field.
struct ChemistryServant {
    field: Mutex<Option<Vec<f64>>>,
}

impl ParallelServant for ChemistryServant {
    fn repository_id(&self) -> &str {
        "IDL:Coupling/Density:1.0"
    }

    fn invoke_parallel(
        &self,
        op: &str,
        args: &ParArgs,
        ctx: &ParCtx,
    ) -> Result<Option<ParValue>, GridCcmError> {
        match op {
            "step" => {
                let dt = args.f64(0)?;
                let mut guard = self.field.lock();
                let local_len = Distribution::Block
                    .local_len(FIELD_ELEMS, ctx.rank, ctx.size)
                    as usize;
                let rank = ctx.rank;
                let field = guard.get_or_insert_with(|| {
                    // Non-uniform initial condition: each rank holds a
                    // different concentration plateau.
                    vec![1.0 + rank as f64; local_len]
                });
                // A toy reaction step: decay plus a neighbour average via
                // MPI (halo exchange stand-in: allreduce of the mean).
                let local_mean: f64 = field.iter().sum::<f64>() / field.len() as f64;
                let global_mean = match &ctx.comm {
                    Some(comm) => {
                        comm.allreduce(ReduceOp::Sum, &[local_mean])?[0] / ctx.size as f64
                    }
                    None => local_mean,
                };
                for v in field.iter_mut() {
                    *v = *v * (1.0 - dt) + global_mean * dt;
                }
                // Simulating the chemistry costs CPU time.
                ctx.clock.advance(50_000); // 50 µs per step per node
                Ok(None)
            }
            "density" => {
                let guard = self.field.lock();
                let local_len = Distribution::Block
                    .local_len(FIELD_ELEMS, ctx.rank, ctx.size)
                    as usize;
                let field = guard
                    .clone()
                    .unwrap_or_else(|| vec![1.0 + ctx.rank as f64; local_len]);
                Ok(Some(ParValue::Dist(DistSeq::from_f64_local(
                    FIELD_ELEMS,
                    Distribution::Block,
                    ctx.rank,
                    ctx.size,
                    &field,
                )?)))
            }
            other => Err(GridCcmError::Protocol(format!("unknown op {other}"))),
        }
    }
}

/// The transport component's own interface (driven by this example).
fn transport_interface() -> InterfaceDef {
    InterfaceDef {
        repo_id: "IDL:Coupling/Transport:1.0".into(),
        ops: vec![OpDef::new(
            "advance",
            vec![ArgDef::new("dt", ParamKind::Double)],
            Some(ParamKind::Double), // returns the porosity residual
        )],
    }
}

/// SPMD transport servant: each `advance` pulls the density field from
/// chemistry through the parallel connection and integrates.
struct TransportServant {
    component: Mutex<Option<Arc<GridCcmComponent>>>,
    porosity: Mutex<f64>,
}

impl ParallelServant for TransportServant {
    fn repository_id(&self) -> &str {
        "IDL:Coupling/Transport:1.0"
    }

    fn invoke_parallel(
        &self,
        op: &str,
        args: &ParArgs,
        ctx: &ParCtx,
    ) -> Result<Option<ParValue>, GridCcmError> {
        if op != "advance" {
            return Err(GridCcmError::Protocol(format!("unknown op {op}")));
        }
        let dt = args.f64(0)?;
        let component = self
            .component
            .lock()
            .clone()
            .expect("backref installed by the factory");
        // The paper's Figure 1 arrow: transport pulls density from
        // chemistry. GridCCM redistributes chemistry's 3 blocks onto
        // transport's 2 — all nodes participate, no bottleneck.
        let density = component.parallel_connection("density", chemistry_plan())?;
        let field = match density.invoke("density", vec![])? {
            Some(ParValue::Dist(d)) => d.as_f64()?,
            other => {
                return Err(GridCcmError::Protocol(format!(
                    "unexpected density reply {other:?}"
                )))
            }
        };
        // Toy porosity update + a residual via the internal MPI world.
        let local_residual: f64 =
            field.iter().map(|v| (v - 1.0).abs()).sum::<f64>() * dt;
        let residual = match &ctx.comm {
            Some(comm) => comm.allreduce(ReduceOp::Sum, &[local_residual])?[0],
            None => local_residual,
        };
        *self.porosity.lock() += residual;
        ctx.clock.advance(30_000); // 30 µs of transport compute
        Ok(Some(ParValue::F64(residual)))
    }
}

fn main() {
    // Five nodes: chemistry on 3, transport on 2.
    let grid = Grid::single_cluster(5).expect("grid boots");

    grid.register_factory("make_chemistry", |env| {
        GridCcmComponent::new(
            "Chemistry",
            "IDL:Coupling/ChemistryComponent:1.0",
            env.clone(),
            vec![ParallelPort {
                name: "density".into(),
                plan: chemistry_plan(),
                servant: Arc::new(ChemistryServant {
                    field: Mutex::new(None),
                }),
            }],
            vec![],
        ) as _
    });
    grid.register_factory("make_transport", |env| {
        let servant = Arc::new(TransportServant {
            component: Mutex::new(None),
            porosity: Mutex::new(0.0),
        });
        let component = GridCcmComponent::new(
            "Transport",
            "IDL:Coupling/TransportComponent:1.0",
            env.clone(),
            vec![ParallelPort {
                name: "advance".into(),
                plan: Arc::new(InterceptionPlan::all_replicated(&transport_interface())),
                servant: Arc::clone(&servant) as _,
            }],
            vec![PortDesc::new(
                "density",
                PortKind::Receptacle,
                "IDL:Coupling/Density:1.0",
            )],
        );
        *servant.component.lock() = Some(Arc::clone(&component));
        component as _
    });

    let assembly = Assembly::parse(
        r#"<assembly name="coupling">
             <component id="chemistry" package="chemistry">
               <parallel replicas="3"/>
             </component>
             <component id="transport" package="transport">
               <parallel replicas="2"/>
             </component>
             <connection id="density-feed">
               <provides component="chemistry" facet="density"/>
               <uses component="transport" receptacle="density"/>
             </connection>
           </assembly>"#,
    )
    .expect("assembly parses");

    let packages = [
        Package::new("chemistry", "1.0", "make_chemistry"),
        Package::new("transport", "1.0", "make_transport"),
    ];
    let mut deployer = GridDeployer::new(&grid);
    deployer.register_interface(chemistry_interface(), chemistry_plan());
    let app = deployer.deploy(&assembly, &packages).expect("deploys");
    println!(
        "deployed: chemistry on {:?}, transport on {:?}",
        app.replicas("chemistry")
            .iter()
            .map(|r| r.node.as_str())
            .collect::<Vec<_>>(),
        app.replicas("transport")
            .iter()
            .map(|r| r.node.as_str())
            .collect::<Vec<_>>()
    );

    // Drive a few coupled timesteps through the transport component's
    // replicated `advance` operation (this example is the sequential
    // "driver" of the coupled simulation).
    let transport_iors: Vec<padico::orb::Ior> = app
        .replicas("transport")
        .iter()
        .map(|r| r.component.provide_facet("advance").unwrap())
        .collect();
    let driver_orb = Arc::clone(&grid.node(0).env.orb);
    let refs = transport_iors
        .into_iter()
        .map(|i| driver_orb.object_ref(i))
        .collect();
    let transport = padico::core::parallel::client::ParallelRef::new(
        "driver",
        Arc::new(InterceptionPlan::all_replicated(&transport_interface())),
        refs,
        0,
        1,
    )
    .unwrap();

    // Also step the chemistry between pulls.
    let chem_iors: Vec<padico::orb::Ior> = app
        .replicas("chemistry")
        .iter()
        .map(|r| r.component.provide_facet("density").unwrap())
        .collect();
    let chem_refs = chem_iors
        .into_iter()
        .map(|i| driver_orb.object_ref(i))
        .collect();
    let chemistry = padico::core::parallel::client::ParallelRef::new(
        "driver-chem",
        chemistry_plan(),
        chem_refs,
        0,
        1,
    )
    .unwrap();

    for step in 0..3 {
        chemistry
            .invoke("step", vec![ParValue::F64(0.1)])
            .expect("chemistry step");
        let residual = match transport
            .invoke("advance", vec![ParValue::F64(0.1)])
            .expect("transport advance")
        {
            Some(ParValue::F64(r)) => r,
            other => panic!("unexpected reply {other:?}"),
        };
        println!("step {step}: porosity residual = {residual:.6}");
    }
    println!(
        "virtual time on the driver node: {:.2} ms",
        grid.node(0).env.tm.clock().now() as f64 / 1e6
    );
}
