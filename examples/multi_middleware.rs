//! The PadicoTM story (paper §4.3): several middleware systems in one
//! process, cooperatively sharing one high-performance network.
//!
//! This example demonstrates, in order:
//!
//! 1. the **conflict** PadicoTM solves — two raw clients cannot both open
//!    an exclusive Myrinet NIC;
//! 2. **dynamically loadable middleware modules** — MPI and a CORBA ORB
//!    loaded side by side on every node, through the module registry;
//! 3. **cooperative sharing** — a CORBA stream and an MPI stream pushed
//!    through the same NIC at the same time, each getting about half of
//!    Myrinet's 240 MB/s (the §4.4 concurrent result);
//! 4. **personalities** — the same circuit driven through the Madeleine
//!    and FastMessages personalities, and a VLink socket through the BSD
//!    personality.
//!
//! ```text
//! cargo run --example multi_middleware
//! ```

use padico::fabric::topology::single_cluster;
use padico::fabric::{FabricKind, Payload};
use padico::mpi::init_world;
use padico::orb::cdr::{CdrReader, CdrWriter};
use padico::orb::orb::Orb;
use padico::orb::poa::{Servant, ServerCtx};
use padico::orb::profile::OrbProfile;
use padico::orb::OrbError;
use padico::tm::circuit::CircuitSpec;
use padico::tm::module::PadicoModule;
use padico::tm::personality::bsd_socket::SocketApi;
use padico::tm::personality::fastmsg::FmChannel;
use padico::tm::personality::madeleine::{MadChannel, SendMode};
use padico::tm::runtime::PadicoTM;
use padico::tm::selector::FabricChoice;
use padico::tm::TmError;
use padico::util::stats::mb_per_s;
use std::sync::Arc;

struct SinkServant;

impl Servant for SinkServant {
    fn repository_id(&self) -> &str {
        "IDL:Demo/Sink:1.0"
    }

    fn dispatch(
        &self,
        operation: &str,
        args: &mut CdrReader,
        _reply: &mut CdrWriter,
        _ctx: &ServerCtx,
    ) -> Result<(), OrbError> {
        match operation {
            "push" => {
                let _ = args.read_octet_seq()?;
                Ok(())
            }
            "drain" => Ok(()),
            other => Err(OrbError::BadOperation(other.into())),
        }
    }
}

/// A middleware module wrapper, as PadicoTM would dlopen it.
struct MpiModule;

impl PadicoModule for MpiModule {
    fn name(&self) -> &str {
        "mpi"
    }
    fn init(&self, tm: &Arc<PadicoTM>) -> Result<(), TmError> {
        println!("  [{}] MPI module initialized", tm.node());
        Ok(())
    }
}

struct OrbModule;

impl PadicoModule for OrbModule {
    fn name(&self) -> &str {
        "orb.omni"
    }
    fn init(&self, tm: &Arc<PadicoTM>) -> Result<(), TmError> {
        println!("  [{}] omniORB module initialized", tm.node());
        Ok(())
    }
}

fn main() {
    let (topo, ids) = single_cluster(2);
    let topo = Arc::new(topo);

    // --- 1. The conflict: exclusive NIC access without PadicoTM. -------
    let myrinet = topo
        .fabrics()
        .iter()
        .find(|f| f.kind() == FabricKind::Myrinet)
        .unwrap()
        .clone();
    let raw_mpi = myrinet.attach(ids[0], "raw-mpich").unwrap();
    match myrinet.attach(ids[0], "raw-corba") {
        Err(e) => println!("without PadicoTM: second middleware refused: {e}"),
        Ok(_) => unreachable!("Myrinet NICs are exclusive"),
    }
    drop(raw_mpi);

    // --- 2. PadicoTM up, modules loaded side by side. ------------------
    let tms = PadicoTM::boot_all(Arc::clone(&topo)).unwrap();
    println!("PadicoTM up on {} nodes; loading middleware modules:", tms.len());
    for tm in &tms {
        tm.modules().load(tm, Arc::new(MpiModule)).unwrap();
        tm.modules().load(tm, Arc::new(OrbModule)).unwrap();
    }
    println!(
        "  modules on {}: {:?}",
        tms[0].node(),
        tms[0].modules().loaded()
    );

    // --- 3. CORBA + MPI concurrently over the same Myrinet NIC. --------
    let choice = FabricChoice::Kind(FabricKind::Myrinet);
    let client_orb =
        Orb::start(Arc::clone(&tms[0]), "demo", OrbProfile::omniorb3(), choice).unwrap();
    let server_orb =
        Orb::start(Arc::clone(&tms[1]), "demo", OrbProfile::omniorb3(), choice).unwrap();
    let obj = client_orb.object_ref(server_orb.activate(Arc::new(SinkServant)));
    obj.request("drain").invoke().unwrap();
    let comm0 = init_world(&tms[0], "demo", ids.clone(), choice).unwrap();
    let comm1 = init_world(&tms[1], "demo", ids.clone(), choice).unwrap();

    let pieces = 16usize;
    let piece = 256 << 10;
    let blob = padico::util::rng::payload(1, "demo", piece);
    let start = tms[0].clock().now();
    let mpi_thread = {
        let comm0 = comm0.clone();
        let blob = blob.clone();
        std::thread::spawn(move || {
            for _ in 0..pieces {
                comm0
                    .send_bytes(1, 0, Payload::from_vec(blob.clone()))
                    .unwrap();
            }
        })
    };
    let mpi_rx = std::thread::spawn(move || {
        for _ in 0..pieces {
            comm1.recv_bytes(0, 0).unwrap();
        }
    });
    let corba_thread = {
        let obj = obj.clone();
        let blob = bytes::Bytes::from(blob.clone());
        std::thread::spawn(move || {
            for _ in 0..pieces {
                obj.request("push")
                    .arg_octet_seq(blob.clone())
                    .invoke_oneway()
                    .unwrap();
            }
            obj.request("drain").invoke().unwrap();
        })
    };
    mpi_thread.join().unwrap();
    corba_thread.join().unwrap();
    mpi_rx.join().unwrap();
    let elapsed = tms[0].clock().now() - start;
    let per_flow = mb_per_s(pieces * piece, elapsed);
    println!(
        "CORBA + MPI concurrently: {:.0} MB/s per flow, {:.0} MB/s aggregate \
         (paper: 120 each of Myrinet's 240)",
        per_flow,
        2.0 * per_flow
    );

    // --- 4. Personalities: legacy APIs over the abstract interfaces. ---
    // Madeleine pack/unpack over a circuit.
    let spec = CircuitSpec::new("legacy", ids.clone()).with_choice(choice);
    let c0 = tms[0].circuit(spec.clone()).unwrap();
    let c1 = tms[1].circuit(spec).unwrap();
    let mad_tx = MadChannel::new(&c0);
    let mut conn = mad_tx.begin_packing(1);
    conn.pack(b"header", SendMode::SaferSide);
    conn.pack_bytes(bytes::Bytes::from_static(b"body-zero-copy"));
    conn.end_packing().unwrap();
    let mad_rx = MadChannel::new(&c1);
    let mut inc = mad_rx.begin_unpacking().unwrap();
    let mut header = [0u8; 6];
    inc.unpack(&mut header).unwrap();
    let mut body = [0u8; 14];
    inc.unpack(&mut body).unwrap();
    inc.end_unpacking().unwrap();
    println!(
        "Madeleine personality: unpacked `{}` + `{}`",
        String::from_utf8_lossy(&header),
        String::from_utf8_lossy(&body)
    );

    // FastMessages handler dispatch over the same circuit.
    let fm_rx = FmChannel::new(&c1);
    fm_rx.register(
        3,
        Box::new(|src, payload| {
            println!(
                "FastMessages personality: handler 3 got {} bytes from rank {src}",
                payload.len()
            );
        }),
    );
    let fm_tx = FmChannel::new(&c0);
    fm_tx.send(1, 3, Payload::from_vec(vec![0; 128])).unwrap();
    fm_rx.poll_one().unwrap();

    // BSD sockets over VLink.
    let server_api = Arc::new(SocketApi::new(Arc::clone(&tms[1])));
    let lfd = server_api.socket();
    server_api.bind(lfd, "daytime").unwrap();
    server_api.listen(lfd).unwrap();
    let srv = Arc::clone(&server_api);
    let t = std::thread::spawn(move || {
        let cfd = srv.accept(lfd).unwrap();
        let mut buf = [0u8; 16];
        let n = srv.recv(cfd, &mut buf).unwrap();
        srv.send(cfd, &buf[..n]).unwrap();
    });
    let client_api = SocketApi::new(Arc::clone(&tms[0]));
    let fd = client_api.socket();
    client_api.connect(fd, tms[1].node(), "daytime").unwrap();
    client_api.send(fd, b"what time is it").unwrap();
    let mut buf = [0u8; 16];
    let n = client_api.recv(fd, &mut buf).unwrap();
    println!(
        "BSD-socket personality: echoed `{}`",
        String::from_utf8_lossy(&buf[..n])
    );
    t.join().unwrap();

    // Modules can be unloaded at runtime, "dynamically changed" (§4.3.4).
    tms[0].modules().unload(&tms[0], "orb.omni").unwrap();
    println!(
        "after unload, modules on {}: {:?}",
        tms[0].node(),
        tms[0].modules().loaded()
    );
}
