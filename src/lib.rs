//! # Padico
//!
//! A Rust reproduction of *"Padico: A Component-Based Software Infrastructure
//! for Grid Computing"* (Denis, Pérez, Priol, Ribes — IPDPS 2003).
//!
//! Padico is two cooperating systems:
//!
//! * **PadicoTM** ([`tm`]) — a three-layer communication runtime
//!   (arbitration / abstraction / personality) that lets several middleware
//!   systems (CORBA, MPI, …) coexist in one process and cooperatively share
//!   heterogeneous networks (SAN, LAN, WAN).
//! * **GridCCM** ([`core`]) — a parallel extension of the CORBA Component
//!   Model: SPMD codes are encapsulated into *parallel components* whose
//!   every node takes part in inter-component communication, with automatic
//!   data redistribution performed by a generated interception layer.
//!
//! This facade crate re-exports the whole workspace. Start with
//! [`core::padico::Grid`] to bring up a simulated grid, or see
//! `examples/quickstart.rs`.

pub use padico_ccm as ccm;
pub use padico_control as control;
pub use padico_core as core;
pub use padico_fabric as fabric;
pub use padico_mpi as mpi;
pub use padico_orb as orb;
pub use padico_tm as tm;
pub use padico_util as util;
